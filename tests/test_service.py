"""Tests for the pipeline service: typed core, job queue, warm reuse.

Everything here drives the service through the **in-process transport**
(:class:`repro.service.InProcessClient` over :meth:`ServiceCore.handle`), so
tier-1 exercises the full request surface — discovery, validation, the whole
job lifecycle — without ever binding a network port.  The HTTP adapter runs
the same core; its socket path is covered by ``repro serve-smoke``.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.core.report import RunReport
from repro.parallel import shutdown_shared_pools
from repro.service import (
    InProcessClient,
    JobSpec,
    JobState,
    ServiceError,
    catalog_payload,
    create_core,
)
from repro.synth import make_corpus

#: recipe knobs shared by every job in these tests: small shards so streaming
#: runs produce several shards (and warm reruns show shard_hits)
SHARD_ROWS = 9


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    shutdown_shared_pools()


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-corpus")
    dataset = make_corpus("books", num_samples=60, seed=8)
    path = root / "corpus.jsonl"
    with path.open("w", encoding="utf-8") as handle:
        for row in dataset:
            handle.write(json.dumps({"text": row["text"]}, ensure_ascii=False) + "\n")
    return path


@pytest.fixture()
def service(tmp_path):
    core = create_core(tmp_path / "service", queue_limit=4)
    try:
        yield core, InProcessClient(core)
    finally:
        core.shutdown()


def submission(corpus_path, **overrides) -> dict:
    merged = {"dataset_path": str(corpus_path), "max_shard_rows": SHARD_ROWS}
    merged.update(overrides)
    return {
        "recipe_name": "pretrain-books-refine-en",
        "mode": "streaming",
        "overrides": merged,
    }


# ----------------------------------------------------------------------
# Discovery + catalog
# ----------------------------------------------------------------------
class TestDiscovery:
    def test_health(self, service):
        _core, client = service
        body = client.get("/health").raise_for_status().body
        assert body["status"] == "ok"
        assert body["jobs"] == {state: 0 for state in JobState.ALL}

    def test_ops_listing_and_detail(self, service):
        _core, client = service
        ops = client.get("/ops").raise_for_status().body["ops"]
        names = [entry["name"] for entry in ops]
        assert "text_length_filter" in names and names == sorted(names)
        detail = client.get("/ops/text_length_filter").raise_for_status().body
        assert detail["category"] == "filter"
        assert {spec["name"] for spec in detail["params"]} == {"min_len", "max_len"}
        assert detail["effects"]["category"] == "filter"

    def test_unknown_op_404_with_suggestion(self, service):
        _core, client = service
        response = client.get("/ops/text_lenth_filter")
        assert response.status == 404
        assert "text_length_filter" in response.body["error"]["message"]

    def test_recipes_listing_and_detail(self, service):
        _core, client = service
        recipes = client.get("/recipes").raise_for_status().body["recipes"]
        assert any(entry["name"] == "pretrain-books-refine-en" for entry in recipes)
        detail = client.get("/recipes/dedup-only-exact").raise_for_status().body
        assert detail["recipe"]["process"]

    def test_schema_endpoint_matches_cli_schema_json(self, service, capsys):
        # the satellite contract: `repro schema --json` and GET /schema are
        # the same payload, verbatim
        _core, client = service
        served = client.get("/schema").raise_for_status().body
        assert main(["schema", "--json"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert served == printed
        assert served == json.loads(json.dumps(catalog_payload(), default=repr))

    def test_unknown_route_and_wrong_method(self, service):
        _core, client = service
        assert client.get("/nope").status == 404
        assert client.post("/health").status == 405
        assert client.get("/validate").status == 405


# ----------------------------------------------------------------------
# Validation endpoint
# ----------------------------------------------------------------------
class TestValidation:
    def test_valid_builtin_recipe(self, service):
        _core, client = service
        body = client.post("/validate", {"recipe_name": "dedup-only-exact"})
        assert body.raise_for_status().body == {"valid": True, "issues": []}

    def test_invalid_inline_recipe_reports_every_issue(self, service):
        _core, client = service
        recipe = {
            "process": [
                {"text_length_filter": {"min_len": -3, "max_lne": 10}},
                {"no_such_mapper": {}},
            ]
        }
        body = client.post("/validate", {"recipe": recipe}).raise_for_status().body
        assert body["valid"] is False
        messages = " ".join(issue["message"] for issue in body["issues"])
        assert "below the minimum" in messages
        assert "max_lne" in " ".join(issue["param"] for issue in body["issues"])
        assert any(issue["op"] == "no_such_mapper" for issue in body["issues"])

    def test_validation_requires_exactly_one_source(self, service):
        _core, client = service
        assert client.post("/validate", {}).status == 400
        both = {"recipe": {}, "recipe_name": "dedup-only-exact"}
        assert client.post("/validate", both).status == 400


# ----------------------------------------------------------------------
# Submission contract
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_requires_exactly_one_recipe_source(self):
        with pytest.raises(ServiceError) as excinfo:
            JobSpec.from_payload({})
        assert excinfo.value.status == 400

    def test_unknown_recipe_name_is_404(self):
        with pytest.raises(ServiceError) as excinfo:
            JobSpec.from_payload(
                {"recipe_name": "pretrain-boks-refine-en"}
            )
        assert excinfo.value.status == 404
        assert "pretrain-books-refine-en" in excinfo.value.message

    def test_requires_dataset_path(self):
        with pytest.raises(ServiceError) as excinfo:
            JobSpec.from_payload({"recipe_name": "dedup-only-exact"})
        assert excinfo.value.status == 400
        assert "dataset_path" in excinfo.value.message

    def test_rejects_unknown_mode(self, corpus_path):
        payload = submission(corpus_path)
        payload["mode"] = "warp-speed"
        with pytest.raises(ServiceError) as excinfo:
            JobSpec.from_payload(payload)
        assert excinfo.value.status == 400

    def test_overrides_merge_into_named_recipe(self, corpus_path):
        spec = JobSpec.from_payload(submission(corpus_path, np=2))
        assert spec.recipe["np"] == 2
        assert spec.recipe["dataset_path"] == str(corpus_path)
        assert spec.recipe["process"]  # the built-in op list came along


# ----------------------------------------------------------------------
# Job lifecycle through the in-process transport (no port bound)
# ----------------------------------------------------------------------
class TestJobLifecycle:
    def test_submit_status_report_lifecycle(self, service, corpus_path):
        core, client = service
        accepted = client.post("/jobs", submission(corpus_path))
        assert accepted.status == 202
        job = accepted.body["job"]
        assert job["state"] in (JobState.QUEUED, JobState.RUNNING)

        view = client.wait_for_job(job["id"])
        assert view["state"] == JobState.SUCCEEDED
        assert view["started_at"] >= view["created_at"]
        assert view["finished_at"] >= view["started_at"]
        assert view["export_paths"], "a service job must export by default"

        listed = client.get("/jobs").raise_for_status().body["jobs"]
        assert [entry["id"] for entry in listed] == [job["id"]]

        report = client.job_report(job["id"])
        assert report["mode"] == "streaming"
        assert report["num_output_samples"] > 0
        trace = client.get(f"/jobs/{job['id']}/trace").raise_for_status()
        assert trace.body["job"]["id"] == job["id"]

    def test_cancel_queued_job_and_running_conflict(self, service, corpus_path):
        core, client = service
        core.jobs.pause()  # hold the worker so the job stays queued
        job = client.submit_job(submission(corpus_path))
        assert client.job(job["id"])["state"] == JobState.QUEUED

        cancelled = client.post(f"/jobs/{job['id']}/cancel").raise_for_status()
        assert cancelled.body["job"]["state"] == JobState.CANCELLED
        # cancelling again conflicts: the job is terminal
        assert client.post(f"/jobs/{job['id']}/cancel").status == 409
        # a cancelled job never produces a report
        assert client.get(f"/jobs/{job['id']}/report").status == 404
        core.jobs.resume()
        # the worker must skip the cancelled entry and stay healthy
        follow_up = client.submit_job(submission(corpus_path))
        assert client.wait_for_job(follow_up["id"])["state"] == JobState.SUCCEEDED

    def test_failed_job_captures_error(self, service, tmp_path):
        core, client = service
        job = client.submit_job(
            {
                "recipe": {
                    "dataset_path": str(tmp_path / "does-not-exist.jsonl"),
                    "process": [{"text_length_filter": {"min_len": 1}}],
                }
            }
        )
        view = client.wait_for_job(job["id"])
        assert view["state"] == JobState.FAILED
        assert view["error"]
        from repro.service.runtime import ERROR_FILE

        error_file = core.runtime.job_dir(job["id"]) / ERROR_FILE
        assert error_file.exists() and error_file.read_text(encoding="utf-8")
        assert client.get(f"/jobs/{job['id']}/report").status == 404

    def test_unknown_job_is_404(self, service):
        _core, client = service
        assert client.get("/jobs/job-999999").status == 404

    def test_bounded_queue_rejects_overflow_with_503(self, service, corpus_path):
        core, client = service
        core.jobs.pause()
        try:
            for _ in range(4):  # fixture queue_limit=4
                client.submit_job(submission(corpus_path))
            overflow = client.post("/jobs", submission(corpus_path))
            assert overflow.status == 503
            assert "queue is full" in overflow.body["error"]["message"]
        finally:
            # drain without executing four pipelines: cancel then resume
            for view in client.get("/jobs").raise_for_status().body["jobs"]:
                client.post(f"/jobs/{view['id']}/cancel")
            core.jobs.resume()


# ----------------------------------------------------------------------
# The acceptance criteria: warm cache, shared pool, CLI-identical exports
# ----------------------------------------------------------------------
class TestWarmReuse:
    def test_two_jobs_cli_identical_and_second_cache_warm(
        self, service, corpus_path, tmp_path, capsys
    ):
        core, client = service
        # two submissions enqueued concurrently from separate threads (the
        # transport is concurrent; execution is safely serialized)
        views = {}

        def submit_and_wait(slot: str) -> None:
            job = client.submit_job(submission(corpus_path))
            views[slot] = client.wait_for_job(job["id"])

        threads = [
            threading.Thread(target=submit_and_wait, args=(slot,))
            for slot in ("first", "second")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert views["first"]["state"] == JobState.SUCCEEDED
        assert views["second"]["state"] == JobState.SUCCEEDED

        # the later-finishing job ran cache-warm off the shared shard cache
        by_finish = sorted(views.values(), key=lambda view: view["finished_at"])
        warm_report = client.job_report(by_finish[1]["id"])
        assert warm_report["cache"]["shard_hits"] > 0

        # both exports are byte-identical to the equivalent CLI run
        cli_export = tmp_path / "cli-export.jsonl"
        assert (
            main(
                [
                    "process",
                    "--recipe",
                    "pretrain-books-refine-en",
                    "--dataset",
                    str(corpus_path),
                    "--export",
                    str(cli_export),
                    "--work-dir",
                    str(tmp_path / "cli-work"),
                    "--mode",
                    "streaming",
                    "--max-shard-rows",
                    str(SHARD_ROWS),
                ]
            )
            == 0
        )
        capsys.readouterr()
        cli_bytes = cli_export.read_bytes()
        assert cli_bytes
        for view in views.values():
            (export_path,) = view["export_paths"]
            with open(export_path, "rb") as handle:
                assert handle.read() == cli_bytes

    def test_parallel_jobs_share_one_worker_pool(self, service, corpus_path):
        core, client = service
        first = client.submit_job(submission(corpus_path, np=2, use_cache=False))
        second = client.submit_job(submission(corpus_path, np=2, use_cache=False))
        assert client.wait_for_job(first["id"])["state"] == JobState.SUCCEEDED
        assert client.wait_for_job(second["id"])["state"] == JobState.SUCCEEDED
        parallel_1 = client.job_report(first["id"])["parallel"]
        parallel_2 = client.job_report(second["id"])["parallel"]
        assert parallel_1["shared"] and parallel_2["shared"]
        assert parallel_1["worker_pids"], "the pooled run must list its workers"
        # one warm WorkerPool served both jobs: identical worker processes
        assert parallel_1["worker_pids"] == parallel_2["worker_pids"]
        assert client.get("/health").raise_for_status().body["warm_pools"] >= 1

    def test_report_cli_renders_service_job(self, service, corpus_path, capsys):
        core, client = service
        job = client.submit_job(submission(corpus_path))
        assert client.wait_for_job(job["id"])["state"] == JobState.SUCCEEDED
        capsys.readouterr()
        assert (
            main(
                [
                    "report",
                    "--service-root",
                    str(core.runtime.root),
                    "--job",
                    job["id"],
                    "--json",
                ]
            )
            == 0
        )
        printed = json.loads(capsys.readouterr().out)
        assert printed == client.job_report(job["id"])
        # the same report renders through the generic work-dir path too
        loaded = RunReport.load(core.runtime.job_dir(job["id"]))
        assert loaded.as_dict() == json.loads(
            json.dumps(loaded.as_dict(), default=repr)
        )

    def test_report_cli_unknown_job_fails_cleanly(self, service):
        core, _client = service
        with pytest.raises(SystemExit):
            main(
                [
                    "report",
                    "--service-root",
                    str(core.runtime.root),
                    "--job",
                    "job-424242",
                ]
            )
