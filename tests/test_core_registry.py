"""Tests for the operator/formatter registry."""

import pytest

from repro.core.errors import RegistryError
from repro.core.registry import (
    FORMATTERS,
    OPERATORS,
    Registry,
    _snake_case,
    suggest_names,
    unknown_name_message,
)


class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("test")

        @registry.register_module("my_op")
        class MyOp:
            pass

        assert registry.get("my_op") is MyOp
        assert "my_op" in registry
        assert len(registry) == 1

    def test_register_default_name_is_snake_case(self):
        registry = Registry("test")

        @registry.register_module()
        class SomeFancyOperator:
            pass

        assert "some_fancy_operator" in registry

    def test_duplicate_registration_raises(self):
        registry = Registry("test")
        registry.register_module("dup")(type("A", (), {}))
        with pytest.raises(RegistryError):
            registry.register_module("dup")(type("B", (), {}))

    def test_duplicate_with_force_overwrites(self):
        registry = Registry("test")
        registry.register_module("dup")(type("A", (), {}))
        cls_b = registry.register_module("dup", force=True)(type("B", (), {}))
        assert registry.get("dup") is cls_b

    def test_unknown_lookup_raises_with_known_names(self):
        registry = Registry("test")
        registry.register_module("known")(type("A", (), {}))
        with pytest.raises(RegistryError, match="known"):
            registry.get("unknown")

    def test_list_is_sorted(self):
        registry = Registry("test")
        for name in ("b_op", "a_op", "c_op"):
            registry.register_module(name)(type(name, (), {}))
        assert registry.list() == ["a_op", "b_op", "c_op"]

    def test_unknown_lookup_suggests_close_matches(self):
        with pytest.raises(RegistryError, match="did you mean: text_length_filter"):
            OPERATORS.get("text_lenght_filter")

    def test_unknown_formatter_suggests_close_matches(self):
        with pytest.raises(RegistryError, match="did you mean.*jsonl_formatter"):
            FORMATTERS.get("jsonl_formater")

    def test_far_off_lookup_lists_known_entries(self):
        registry = Registry("test")
        registry.register_module("alpha")(type("A", (), {}))
        registry.register_module("beta")(type("B", (), {}))
        with pytest.raises(RegistryError, match="known entries: alpha, beta"):
            registry.get("zzzzzzzzzz")


class TestSuggestions:
    def test_suggest_names_ranks_closest_first(self):
        names = ["text_length_filter", "words_num_filter", "clean_html_mapper"]
        assert suggest_names("text_lenght_filter", names)[0] == "text_length_filter"

    def test_suggest_names_empty_when_nothing_close(self):
        assert suggest_names("zzzz", ["alpha", "beta"]) == []

    def test_unknown_name_message_variants(self):
        with_hint = unknown_name_message("operator", "text_lenght_filter", ["text_length_filter"])
        assert "did you mean" in with_hint
        without = unknown_name_message("operator", "zzzz", ["alpha"])
        assert "known entries: alpha" in without


class TestSnakeCase:
    @pytest.mark.parametrize(
        "camel,snake",
        [
            ("TextLengthFilter", "text_length_filter"),
            ("CleanHtmlMapper", "clean_html_mapper"),
            ("Simple", "simple"),
        ],
    )
    def test_conversion(self, camel, snake):
        assert _snake_case(camel) == snake


class TestGlobalRegistries:
    def test_operator_count_is_over_fifty(self):
        # the paper advertises 50+ built-in OPs; the reproduction ships > 50 too
        assert len(OPERATORS) >= 50

    def test_known_operator_categories_present(self):
        for name in (
            "whitespace_normalization_mapper",
            "text_length_filter",
            "document_deduplicator",
            "topk_specified_field_selector",
        ):
            assert name in OPERATORS

    def test_formatters_registered(self):
        for name in ("jsonl_formatter", "csv_formatter", "text_formatter"):
            assert name in FORMATTERS
