"""Tests for :mod:`repro.tools.dataflow`: extractor, checker and wiring.

Golden bad/clean recipe fixtures live under ``tests/fixtures/dataflow/``;
synthetic operator modules there (``*_ops.py``) are parsed by the effect
extractor, never imported — the same convention as the lint fixtures.  The
bad fixtures must produce exactly the expected (rule, step) pairs and the
clean ones nothing; every built-in recipe must come out dataflow-clean.
"""

import json
from pathlib import Path

import pytest

from repro.api import Pipeline, validate_recipe
from repro.cli import main
from repro.core.config import RecipeConfig, load_config
from repro.core.dataset import NestedDataset
from repro.core.errors import ConfigError, DataflowWarning
from repro.core.executor import Executor
from repro.core.planner import ExecutionPlan
from repro.core.registry import OPERATORS
from repro.core.sample import Fields
from repro.core.schema import schema_for
from repro.recipes import BUILT_IN_RECIPES
from repro.tools.dataflow import (
    DATAFLOW_RULES,
    EFFECT_SIGNATURE_VERSION,
    catalog_as_dict,
    check_recipe,
    effect_catalog,
    effect_signature,
    extract_effects_from_path,
    render_json,
    render_json_many,
    render_text,
)

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "dataflow"

# rule id -> (bad fixture, expected (rule, 1-based step index) pairs)
GOLDEN = {
    "undefined-read": ("bad_undefined_read.json", [("undefined-read", 1)]),
    "order-hazard": (
        "bad_order_hazard.json",
        [("order-hazard", 1), ("order-hazard", 4)],
    ),
    "dead-write": ("bad_dead_write.json", [("dead-write", 1), ("dead-write", 3)]),
    "fusion-unsafe": ("bad_fusion_unsafe.json", [("fusion-unsafe", 2)]),
    "stream-unsafe": (
        "bad_stream_unsafe.json",
        [("stream-unsafe", 1), ("stream-unsafe", 2)],
    ),
}

CLEAN_FIXTURES = sorted(
    path.name for path in FIXTURE_DIR.glob("clean_*.json")
)

BROKEN_RECIPE = {
    "project_name": "broken",
    "process": [
        {"topk_specified_field_selector": {"field_key": "__stats__.text_length", "topk": 5}}
    ],
}


def fixture_signatures() -> dict:
    """Built-in catalog extended with the synthetic fixture ops."""
    signatures = dict(effect_catalog())
    for path in sorted(FIXTURE_DIR.glob("*_ops.py")):
        signatures.update(extract_effects_from_path(path))
    return signatures


def check_fixture(name: str):
    payload = json.loads((FIXTURE_DIR / name).read_text(encoding="utf-8"))
    return check_recipe(payload, signatures=fixture_signatures())


def pairs(findings) -> list[tuple[str, int]]:
    return [(finding.rule, finding.index) for finding in findings]


class TestEffectExtractor:
    def test_every_registered_op_has_a_nonempty_signature(self):
        for name in OPERATORS.list():
            signature = effect_signature(name)
            assert signature is not None, f"{name} has no effect signature"
            assert not signature.is_empty, f"{name} has an empty effect signature"

    def test_filter_signature_names_its_stats_key(self):
        signature = effect_signature("text_length_filter")
        assert "__stats__.text_len" in signature.writes
        assert "__stats__.text_len" in signature.reads
        assert "<text_key>" in signature.reads

    def test_dedup_signature_covers_hash_lifecycle(self):
        signature = effect_signature("document_deduplicator")
        assert "__hash__" in signature.writes
        assert "__hash__" in signature.removes

    def test_context_keys_are_extracted(self):
        signature = effect_signature("words_num_filter")
        assert "words" in signature.context_writes

    def test_row_effect_fills_fieldless_ops(self):
        signature = effect_signature("random_selector")
        assert not signature.reads and not signature.writes
        assert signature.row_effect == "keeps a chosen subset of rows"

    def test_resolve_binds_placeholders(self):
        signature = effect_signature("topk_specified_field_selector")
        effects = signature.resolve({"field_key": "meta.stars"})
        assert "meta.stars" in effects.reads
        # unresolvable placeholder (empty field_key default) drops the path
        assert not signature.resolve({}).reads - {Fields.text}

    def test_catalog_is_versioned(self):
        payload = catalog_as_dict()
        assert payload["version"] == EFFECT_SIGNATURE_VERSION
        assert len(payload["signatures"]) == len(OPERATORS)

    def test_schema_carries_effects(self):
        schema = schema_for(OPERATORS.get("text_length_filter"))
        assert "__stats__.text_len" in schema.effects().writes


class TestGoldenFixtures:
    def test_every_rule_has_a_golden_fixture(self):
        assert sorted(GOLDEN) == sorted(DATAFLOW_RULES)

    def test_every_rule_has_a_clean_fixture(self):
        for rule_id in DATAFLOW_RULES:
            assert f"clean_{rule_id.replace('-', '_')}.json" in CLEAN_FIXTURES

    @pytest.mark.parametrize("rule_id", sorted(GOLDEN))
    def test_bad_fixture_flags_exact_rule_and_step(self, rule_id):
        relpath, expected = GOLDEN[rule_id]
        result = check_fixture(relpath)
        assert pairs(result.findings) == expected
        assert result.exit_code == 1
        for finding in result.findings:
            assert finding.severity in ("error", "warning")
            assert finding.message
            assert finding.op

    @pytest.mark.parametrize("relpath", CLEAN_FIXTURES)
    def test_clean_fixture_is_clean_under_all_rules(self, relpath):
        result = check_fixture(relpath)
        assert pairs(result.findings) == []
        assert result.suppressed == []
        assert result.exit_code == 0


class TestCheckerSemantics:
    def test_every_built_in_recipe_is_dataflow_clean(self):
        for name in sorted(BUILT_IN_RECIPES):
            result = check_recipe(BUILT_IN_RECIPES[name])
            assert not result.findings, (
                f"built-in recipe {name} has dataflow findings: "
                + "; ".join(str(f) for f in result.findings)
            )
            assert not result.suppressed, f"{name} relies on dataflow_ignore"

    def test_undefined_read_suggests_neighbours(self):
        result = check_recipe(BROKEN_RECIPE)
        assert len(result.findings) == 1
        assert "did you mean" in result.findings[0].message
        assert "__stats__.text_len" in result.findings[0].message

    def test_user_fields_are_open_world_by_default(self):
        result = check_recipe({
            "process": [
                {"specified_field_filter": {"field_key": "meta.language", "target_values": ["en"]}}
            ]
        })
        assert result.findings == []

    def test_input_fields_opt_into_closed_world(self):
        result = check_recipe({
            "input_fields": ["meta.lang"],
            "process": [
                {"specified_field_filter": {"field_key": "meta.language", "target_values": ["en"]}}
            ],
        })
        assert pairs(result.findings) == [("undefined-read", 1)]
        assert "meta.lang" in result.findings[0].message

    def test_stream_override_checks_planned_mode(self):
        recipe = {"process": ["lowercase_mapper"], "stream": False}
        assert check_recipe(recipe, stream=True).findings == []
        bad = json.loads((FIXTURE_DIR / "bad_stream_unsafe.json").read_text())
        bad["stream"] = False
        quiet = check_recipe(bad, signatures=fixture_signatures())
        assert quiet.findings == []
        loud = check_recipe(bad, signatures=fixture_signatures(), stream=True)
        assert [f.rule for f in loud.findings] == ["stream-unsafe", "stream-unsafe"]

    def test_dataflow_ignore_suppresses_findings(self):
        payload = dict(BROKEN_RECIPE, dataflow_ignore=["undefined-read@1"])
        result = check_recipe(payload)
        assert result.findings == []
        assert pairs(result.suppressed) == [("undefined-read", 1)]
        assert result.exit_code == 0

    def test_dataflow_ignore_validates_rule_names(self):
        payload = dict(BROKEN_RECIPE, dataflow_ignore=["undefined-red"])
        with pytest.raises(ConfigError, match="undefined-read"):
            load_config(payload)


class TestReporters:
    def test_text_report_names_rule_step_and_footer(self):
        result = check_recipe(BROKEN_RECIPE)
        text = render_text(result)
        assert "found 1 finding(s):" in text
        assert "[undefined-read]" in text
        assert "step 1 (topk_specified_field_selector)" in text
        assert "1 error(s) / 0 warning(s)" in text

    def test_clean_report_mentions_recipe(self):
        result = check_recipe({"project_name": "tidy", "process": ["lowercase_mapper"]})
        assert "dataflow clean" in render_text(result)
        assert "'tidy'" in render_text(result)

    def test_json_schema_is_stable(self):
        """The documented ``repro dataflow --json`` contract (docs/dataflow.md)."""
        payload = json.loads(render_json(check_recipe(BROKEN_RECIPE)))
        assert list(payload) == [
            "version", "rules", "recipe", "exit_code", "ops_checked",
            "counts", "findings", "suppressed",
        ]
        assert payload["version"] == EFFECT_SIGNATURE_VERSION
        assert payload["rules"] == list(DATAFLOW_RULES)
        assert payload["exit_code"] == 1
        finding = payload["findings"][0]
        assert list(finding) == ["rule", "severity", "step", "op", "field", "message"]
        assert finding["step"] == 1

    def test_json_many_aggregates_exit_code(self):
        results = [check_recipe(BROKEN_RECIPE), check_recipe({"process": []})]
        payload = json.loads(render_json_many(results))
        assert payload["exit_code"] == 1
        assert len(payload["recipes"]) == 2


class TestCli:
    def test_dataflow_command_exits_nonzero_on_broken_recipe(self, tmp_path, capsys):
        recipe = tmp_path / "broken.json"
        recipe.write_text(json.dumps(BROKEN_RECIPE), encoding="utf-8")
        assert main(["dataflow", "--recipe-file", str(recipe)]) == 1
        assert "[undefined-read]" in capsys.readouterr().out

    def test_dataflow_json_output(self, tmp_path, capsys):
        recipe = tmp_path / "broken.json"
        recipe.write_text(json.dumps(BROKEN_RECIPE), encoding="utf-8")
        assert main(["dataflow", "--recipe-file", str(recipe), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == EFFECT_SIGNATURE_VERSION
        assert payload["findings"][0]["rule"] == "undefined-read"

    def test_dataflow_all_builtins_clean(self, capsys):
        assert main(["dataflow", "--all"]) == 0
        assert "23/23" in capsys.readouterr().out or "dataflow-clean" in ""

    def test_lint_recipes_delegates_to_dataflow(self, capsys):
        assert main(["lint", "--recipes"]) == 0
        assert "dataflow-clean" in capsys.readouterr().out

    def test_dataflow_list_rules(self, capsys):
        assert main(["dataflow", "--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in DATAFLOW_RULES:
            assert rule_id in output


class TestWiring:
    def test_validate_recipe_reports_dataflow_findings(self):
        issues = validate_recipe(BROKEN_RECIPE)
        assert any("[undefined-read]" in str(issue) for issue in issues)
        assert any("step 1" in str(issue) for issue in issues)

    def test_validate_recipe_schema_errors_take_precedence(self):
        issues = validate_recipe({"process": ["no_such_op"]})
        assert issues
        assert not any("[undefined-read]" in str(issue) for issue in issues)

    def test_pipeline_plan_flags_broken_recipe(self):
        plan = Pipeline.from_recipe(BROKEN_RECIPE).plan(mode="memory")
        assert plan.dataflow
        assert plan.dataflow[0]["rule"] == "undefined-read"
        assert "dataflow finding" in plan.describe()

    def test_pipeline_plan_clean_recipe_has_no_findings(self):
        plan = Pipeline.new().apply("lowercase_mapper").plan(mode="memory")
        assert plan.dataflow == []

    def test_execution_plan_round_trips_dataflow(self):
        plan = ExecutionPlan(mode="memory", dataflow=[{"rule": "dead-write"}])
        rebuilt = ExecutionPlan.from_dict(plan.as_dict())
        assert rebuilt.dataflow == [{"rule": "dead-write"}]

    def test_executor_warns_by_default(self, tmp_path):
        cfg = load_config(dict(BROKEN_RECIPE, work_dir=str(tmp_path)))
        dataset = NestedDataset.from_list([{"text": "hello"}])
        with Executor(cfg) as executor:
            with pytest.warns(DataflowWarning, match="undefined-read"):
                executor.execute(dataset=dataset, mode="memory")
        assert executor.last_plan.dataflow[0]["rule"] == "undefined-read"

    def test_executor_strict_dataflow_fails_before_running(self, tmp_path):
        cfg = load_config(dict(
            BROKEN_RECIPE, work_dir=str(tmp_path), strict_dataflow=True
        ))
        dataset = NestedDataset.from_list([{"text": "hello"}])
        with Executor(cfg) as executor:
            with pytest.raises(ConfigError, match="undefined-read"):
                executor.execute(dataset=dataset, mode="memory")
            assert executor.last_report is None or executor.last_plan is None

    def test_executor_clean_recipe_does_not_warn(self, tmp_path):
        cfg = RecipeConfig(process=["lowercase_mapper"], work_dir=str(tmp_path))
        dataset = NestedDataset.from_list([{"text": "HELLO"}])
        import warnings as warnings_module

        with Executor(cfg) as executor:
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error", DataflowWarning)
                executor.execute(dataset=dataset, mode="memory")
        assert executor.last_plan.dataflow == []
