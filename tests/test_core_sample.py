"""Tests for sample field conventions and nested access helpers."""

from repro.core.sample import (
    Fields,
    HashKeys,
    clear_context,
    ensure_context,
    ensure_stats,
    get_field,
    has_field,
    merge_samples,
    set_field,
    split_batched,
    strip_internal_fields,
)


class TestGetField:
    def test_top_level(self):
        assert get_field({"text": "hello"}, "text") == "hello"

    def test_nested(self):
        assert get_field({"meta": {"language": "en"}}, "meta.language") == "en"

    def test_deeply_nested(self):
        sample = {"a": {"b": {"c": 3}}}
        assert get_field(sample, "a.b.c") == 3

    def test_missing_returns_default(self):
        assert get_field({"text": "x"}, "meta.language", "??") == "??"

    def test_missing_intermediate(self):
        assert get_field({}, "a.b.c") is None

    def test_non_dict_intermediate(self):
        assert get_field({"a": 5}, "a.b") is None


class TestSetField:
    def test_top_level(self):
        sample = set_field({}, "text", "hi")
        assert sample["text"] == "hi"

    def test_nested_creates_dicts(self):
        sample = set_field({}, "meta.language", "zh")
        assert sample == {"meta": {"language": "zh"}}

    def test_overwrites_non_dict_intermediate(self):
        sample = set_field({"meta": 3}, "meta.lang", "en")
        assert sample["meta"]["lang"] == "en"

    def test_returns_same_object(self):
        sample = {}
        assert set_field(sample, "x", 1) is sample


class TestHasField:
    def test_present(self):
        assert has_field({"meta": {"x": None}}, "meta.x")

    def test_absent(self):
        assert not has_field({"meta": {}}, "meta.x")


class TestStatsAndContext:
    def test_ensure_stats_creates_dict(self):
        sample = {}
        stats = ensure_stats(sample)
        stats["a"] = 1
        assert sample[Fields.stats] == {"a": 1}

    def test_ensure_stats_preserves_existing(self):
        sample = {Fields.stats: {"x": 2}}
        assert ensure_stats(sample) == {"x": 2}

    def test_ensure_context_and_clear(self):
        sample = {}
        ensure_context(sample)["words"] = ["a"]
        assert Fields.context in sample
        clear_context(sample)
        assert Fields.context not in sample

    def test_clear_context_noop_when_missing(self):
        assert clear_context({"text": "x"}) == {"text": "x"}


class TestStripInternalFields:
    def test_removes_stats_and_hashes(self):
        sample = {
            "text": "x",
            Fields.stats: {"a": 1},
            Fields.context: {},
            HashKeys.hash: "deadbeef",
        }
        stripped = strip_internal_fields(sample)
        assert stripped == {"text": "x"}

    def test_keep_stats_option(self):
        sample = {"text": "x", Fields.stats: {"a": 1}}
        assert Fields.stats in strip_internal_fields(sample, keep_stats=True)

    def test_original_not_modified(self):
        sample = {"text": "x", Fields.stats: {}}
        strip_internal_fields(sample)
        assert Fields.stats in sample


class TestBatching:
    def test_merge_and_split_roundtrip(self):
        samples = [{"text": "a", "n": 1}, {"text": "b", "n": 2}]
        batched = merge_samples(samples)
        assert batched == {"text": ["a", "b"], "n": [1, 2]}
        assert split_batched(batched) == samples

    def test_split_empty(self):
        assert split_batched({}) == []
