"""Tests for formatters: jsonl/json/csv/tsv/text/code loading, dispatch and mixing."""

import json

import pytest

from repro.core.errors import FormatError
from repro.core.sample import Fields
from repro.formats.csv_formatter import CsvFormatter, TsvFormatter
from repro.formats.jsonl_formatter import JsonFormatter, JsonlFormatter
from repro.formats.load import load_dataset, load_formatter
from repro.formats.mixture_formatter import MixtureFormatter, mix_datasets
from repro.formats.text_formatter import CodeFormatter, TextFormatter
from repro.synth import wikipedia_like


class TestJsonlFormatter:
    def test_loads_and_unifies(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"text": "hello"}\n\n{"content": "fallback"}\n')
        dataset = JsonlFormatter(dataset_path=str(path)).load_dataset()
        assert len(dataset) == 2
        assert dataset[1][Fields.text] == "fallback"

    def test_suffix_recorded(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"text": "x"}\n')
        dataset = JsonlFormatter(dataset_path=str(path)).load_dataset()
        assert dataset[0][Fields.suffix] == ".jsonl"

    def test_invalid_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(FormatError, match="invalid JSON"):
            JsonlFormatter(dataset_path=str(path)).load_dataset()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FormatError):
            JsonlFormatter(dataset_path=str(tmp_path / "missing.jsonl")).load_dataset()


class TestJsonFormatter:
    def test_loads_list(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps([{"text": "a"}, {"text": "b"}]))
        assert len(JsonFormatter(dataset_path=str(path)).load_dataset()) == 2

    def test_loads_single_object(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps({"text": "only"}))
        assert len(JsonFormatter(dataset_path=str(path)).load_dataset()) == 1

    def test_scalar_top_level_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"just a string"')
        with pytest.raises(FormatError):
            JsonFormatter(dataset_path=str(path)).load_dataset()


class TestDelimitedFormatters:
    def test_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("text,label\nhello,1\nworld,2\n")
        dataset = CsvFormatter(dataset_path=str(path)).load_dataset()
        assert dataset[0][Fields.text] == "hello"
        assert dataset[1]["label"] == "2"

    def test_tsv(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("text\tlabel\nhello\t1\n")
        dataset = TsvFormatter(dataset_path=str(path)).load_dataset()
        assert dataset[0][Fields.text] == "hello"

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(FormatError):
            CsvFormatter(dataset_path=str(path)).load_dataset()


class TestFileFormatters:
    def test_text_directory(self, tmp_path):
        (tmp_path / "a.txt").write_text("first file")
        (tmp_path / "b.txt").write_text("second file")
        dataset = TextFormatter(dataset_path=str(tmp_path)).load_dataset()
        assert len(dataset) == 2
        assert dataset[0]["meta"]["source_file"].endswith(".txt")

    def test_single_text_file(self, tmp_path):
        path = tmp_path / "only.txt"
        path.write_text("content")
        assert len(TextFormatter(dataset_path=str(path)).load_dataset()) == 1

    def test_code_directory(self, tmp_path):
        (tmp_path / "m.py").write_text("def f():\n    return 1\n")
        dataset = CodeFormatter(dataset_path=str(tmp_path)).load_dataset()
        assert dataset[0][Fields.suffix] == ".py"

    def test_no_matching_files_raises(self, tmp_path):
        (tmp_path / "a.bin").write_text("x")
        with pytest.raises(FormatError):
            TextFormatter(dataset_path=str(tmp_path)).load_dataset()


class TestDispatch:
    def test_load_formatter_by_suffix(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"text": "x"}\n')
        assert isinstance(load_formatter(str(path)), JsonlFormatter)

    def test_load_dataset_convenience(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"text": "x"}\n')
        assert len(load_dataset(str(path))) == 1

    def test_directory_dispatch_by_majority_suffix(self, tmp_path):
        (tmp_path / "a.txt").write_text("a")
        (tmp_path / "b.txt").write_text("b")
        assert isinstance(load_formatter(str(tmp_path)), TextFormatter)

    def test_unknown_suffix_raises(self, tmp_path):
        path = tmp_path / "x.parquet"
        path.write_text("binaryish")
        with pytest.raises(FormatError):
            load_formatter(str(path))


class TestMixtureFormatter:
    def test_weights_control_composition(self):
        heavy = wikipedia_like(num_samples=60, seed=1)
        light = wikipedia_like(num_samples=60, seed=2)
        mixed = mix_datasets({"heavy": heavy, "light": light}, {"heavy": 0.9, "light": 0.1},
                             max_samples=60, seed=0)
        sources = [row[Fields.source] for row in mixed]
        assert sources.count("heavy") > sources.count("light")

    def test_max_samples_respected(self):
        data = wikipedia_like(num_samples=50, seed=3)
        mixed = mix_datasets({"a": data}, {"a": 1.0}, max_samples=10)
        assert len(mixed) <= 11

    def test_weight_sequence_accepted(self):
        data = wikipedia_like(num_samples=10, seed=4)
        mixed = mix_datasets({"a": data, "b": data}, [1.0, 1.0])
        assert len(mixed) > 0

    def test_requires_datasets(self):
        with pytest.raises(FormatError):
            MixtureFormatter().load_dataset()

    def test_rejects_all_zero_weights(self):
        data = wikipedia_like(num_samples=5, seed=5)
        with pytest.raises(FormatError):
            MixtureFormatter(datasets={"a": data}, weights={"a": 0.0}).load_dataset()

    def test_deterministic_given_seed(self):
        data = wikipedia_like(num_samples=30, seed=6)
        first = mix_datasets({"a": data}, {"a": 1.0}, max_samples=10, seed=2)
        second = mix_datasets({"a": data}, {"a": 1.0}, max_samples=10, seed=2)
        assert first.to_list() == second.to_list()
