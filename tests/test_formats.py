"""Tests for formatters: jsonl/json/csv/tsv/text/code loading, dispatch and mixing."""

import gzip
import json

import pytest

from repro.core.errors import FormatError
from repro.core.sample import Fields
from repro.formats.csv_formatter import CsvFormatter, TsvFormatter
from repro.formats.jsonl_formatter import JsonFormatter, JsonlFormatter
from repro.formats.load import load_dataset, load_formatter
from repro.formats.mixture_formatter import MixtureFormatter, largest_remainder_allocation, mix_datasets
from repro.formats.sharded import ShardedSource, effective_suffix, open_shard
from repro.formats.text_formatter import CodeFormatter, MarkdownFormatter, TextFormatter
from repro.synth import wikipedia_like


class TestJsonlFormatter:
    def test_loads_and_unifies(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"text": "hello"}\n\n{"content": "fallback"}\n')
        dataset = JsonlFormatter(dataset_path=str(path)).load_dataset()
        assert len(dataset) == 2
        assert dataset[1][Fields.text] == "fallback"

    def test_suffix_recorded(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"text": "x"}\n')
        dataset = JsonlFormatter(dataset_path=str(path)).load_dataset()
        assert dataset[0][Fields.suffix] == ".jsonl"

    def test_invalid_json_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(FormatError, match="invalid JSON"):
            JsonlFormatter(dataset_path=str(path)).load_dataset()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FormatError):
            JsonlFormatter(dataset_path=str(tmp_path / "missing.jsonl")).load_dataset()


class TestJsonFormatter:
    def test_loads_list(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text(json.dumps([{"text": "a"}, {"text": "b"}]))
        assert len(JsonFormatter(dataset_path=str(path)).load_dataset()) == 2

    def test_loads_single_object(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps({"text": "only"}))
        assert len(JsonFormatter(dataset_path=str(path)).load_dataset()) == 1

    def test_scalar_top_level_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"just a string"')
        with pytest.raises(FormatError):
            JsonFormatter(dataset_path=str(path)).load_dataset()


class TestDelimitedFormatters:
    def test_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("text,label\nhello,1\nworld,2\n")
        dataset = CsvFormatter(dataset_path=str(path)).load_dataset()
        assert dataset[0][Fields.text] == "hello"
        assert dataset[1]["label"] == "2"

    def test_tsv(self, tmp_path):
        path = tmp_path / "data.tsv"
        path.write_text("text\tlabel\nhello\t1\n")
        dataset = TsvFormatter(dataset_path=str(path)).load_dataset()
        assert dataset[0][Fields.text] == "hello"

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(FormatError):
            CsvFormatter(dataset_path=str(path)).load_dataset()


class TestFileFormatters:
    def test_text_directory(self, tmp_path):
        (tmp_path / "a.txt").write_text("first file")
        (tmp_path / "b.txt").write_text("second file")
        dataset = TextFormatter(dataset_path=str(tmp_path)).load_dataset()
        assert len(dataset) == 2
        assert dataset[0]["meta"]["source_file"].endswith(".txt")

    def test_single_text_file(self, tmp_path):
        path = tmp_path / "only.txt"
        path.write_text("content")
        assert len(TextFormatter(dataset_path=str(path)).load_dataset()) == 1

    def test_code_directory(self, tmp_path):
        (tmp_path / "m.py").write_text("def f():\n    return 1\n")
        dataset = CodeFormatter(dataset_path=str(tmp_path)).load_dataset()
        assert dataset[0][Fields.suffix] == ".py"

    def test_no_matching_files_raises(self, tmp_path):
        (tmp_path / "a.bin").write_text("x")
        with pytest.raises(FormatError):
            TextFormatter(dataset_path=str(tmp_path)).load_dataset()


class TestDispatch:
    def test_load_formatter_by_suffix(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"text": "x"}\n')
        assert isinstance(load_formatter(str(path)), JsonlFormatter)

    def test_load_dataset_convenience(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"text": "x"}\n')
        assert len(load_dataset(str(path))) == 1

    def test_directory_dispatch_by_majority_suffix(self, tmp_path):
        (tmp_path / "a.txt").write_text("a")
        (tmp_path / "b.txt").write_text("b")
        assert isinstance(load_formatter(str(tmp_path)), TextFormatter)

    def test_unknown_suffix_raises(self, tmp_path):
        path = tmp_path / "x.parquet"
        path.write_text("binaryish")
        with pytest.raises(FormatError):
            load_formatter(str(path))


class TestShardedSource:
    def test_effective_suffix_strips_gz(self):
        assert effective_suffix("shard.jsonl.gz") == ".jsonl"
        assert effective_suffix("shard.jsonl") == ".jsonl"
        assert effective_suffix("bare.gz") == ".gz"

    def test_directory_resolution_is_sorted_and_filtered(self, tmp_path):
        (tmp_path / "b.jsonl").write_text('{"text": "b"}\n')
        (tmp_path / "a.jsonl").write_text('{"text": "a"}\n')
        (tmp_path / "skip.bin").write_text("x")
        files = ShardedSource(tmp_path, suffixes=(".jsonl",)).files()
        assert [path.name for path in files] == ["a.jsonl", "b.jsonl"]

    def test_glob_resolution(self, tmp_path):
        (tmp_path / "shard-1.jsonl").write_text('{"text": "1"}\n')
        (tmp_path / "shard-2.jsonl").write_text('{"text": "2"}\n')
        (tmp_path / "other.jsonl").write_text('{"text": "o"}\n')
        files = ShardedSource(str(tmp_path / "shard-*.jsonl")).files()
        assert [path.name for path in files] == ["shard-1.jsonl", "shard-2.jsonl"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FormatError, match="not found"):
            ShardedSource(tmp_path / "missing").files()

    def test_no_matching_suffix_raises(self, tmp_path):
        (tmp_path / "a.bin").write_text("x")
        with pytest.raises(FormatError):
            ShardedSource(tmp_path, suffixes=(".jsonl",)).files()

    def test_open_shard_gzip_round_trip(self, tmp_path):
        path = tmp_path / "data.jsonl.gz"
        with open_shard(path, "w") as handle:
            handle.write("hello\n")
        with open_shard(path) as handle:
            assert handle.read() == "hello\n"

    def test_gzip_bytes_are_deterministic(self, tmp_path):
        first, second = tmp_path / "a.jsonl.gz", tmp_path / "b.jsonl.gz"
        for path in (first, second):
            with open_shard(path, "w") as handle:
                handle.write("same content\n")
        assert first.read_bytes() == second.read_bytes()


class TestShardedRoundTrips:
    """Every formatter loads directory, glob and gzip inputs (satellite task)."""

    def _expect_texts(self, dataset, texts):
        assert [row[Fields.text] for row in dataset] == texts

    def test_jsonl_directory_glob_and_gzip(self, tmp_path):
        (tmp_path / "a.jsonl").write_text('{"text": "alpha"}\n')
        with gzip.open(tmp_path / "b.jsonl.gz", "wt", encoding="utf-8") as handle:
            handle.write('{"text": "beta"}\n')
        directory = JsonlFormatter(dataset_path=str(tmp_path)).load_dataset()
        self._expect_texts(directory, ["alpha", "beta"])
        assert directory[1][Fields.suffix] == ".jsonl"  # .gz envelope is transparent
        glob_ds = JsonlFormatter(dataset_path=str(tmp_path / "*.jsonl*")).load_dataset()
        self._expect_texts(glob_ds, ["alpha", "beta"])
        gz_only = JsonlFormatter(dataset_path=str(tmp_path / "b.jsonl.gz")).load_dataset()
        self._expect_texts(gz_only, ["beta"])

    def test_json_directory_glob_and_gzip(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps([{"text": "one"}, {"text": "two"}]))
        with gzip.open(tmp_path / "b.json.gz", "wt", encoding="utf-8") as handle:
            handle.write(json.dumps({"text": "three"}))
        directory = JsonFormatter(dataset_path=str(tmp_path)).load_dataset()
        self._expect_texts(directory, ["one", "two", "three"])
        glob_ds = JsonFormatter(dataset_path=str(tmp_path / "*.json*")).load_dataset()
        assert len(glob_ds) == 3

    def test_csv_and_tsv_directory_glob_and_gzip(self, tmp_path):
        (tmp_path / "a.csv").write_text("text,label\nfirst,1\n")
        with gzip.open(tmp_path / "b.csv.gz", "wt", encoding="utf-8") as handle:
            handle.write("text,label\nsecond,2\n")
        directory = CsvFormatter(dataset_path=str(tmp_path)).load_dataset()
        self._expect_texts(directory, ["first", "second"])
        glob_ds = CsvFormatter(dataset_path=str(tmp_path / "*.csv*")).load_dataset()
        assert len(glob_ds) == 2

        tsv_dir = tmp_path / "tsv"
        tsv_dir.mkdir()
        (tsv_dir / "a.tsv").write_text("text\tlabel\nalpha\t1\n")
        with gzip.open(tsv_dir / "b.tsv.gz", "wt", encoding="utf-8") as handle:
            handle.write("text\tlabel\nbeta\t2\n")
        self._expect_texts(TsvFormatter(dataset_path=str(tsv_dir)).load_dataset(), ["alpha", "beta"])

    def test_text_markdown_code_directory_glob_and_gzip(self, tmp_path):
        (tmp_path / "a.txt").write_text("plain one")
        with gzip.open(tmp_path / "b.txt.gz", "wt", encoding="utf-8") as handle:
            handle.write("plain two")
        directory = TextFormatter(dataset_path=str(tmp_path)).load_dataset()
        self._expect_texts(directory, ["plain one", "plain two"])
        glob_ds = TextFormatter(dataset_path=str(tmp_path / "*.txt*")).load_dataset()
        assert len(glob_ds) == 2

        (tmp_path / "doc.md").write_text("# heading")
        self._expect_texts(
            MarkdownFormatter(dataset_path=str(tmp_path)).load_dataset(), ["# heading"]
        )
        (tmp_path / "mod.py").write_text("x = 1\n")
        self._expect_texts(CodeFormatter(dataset_path=str(tmp_path)).load_dataset(), ["x = 1\n"])

    def test_iter_records_is_lazy(self, tmp_path):
        (tmp_path / "a.jsonl").write_text('{"text": "ok"}\n{not json}\n')
        iterator = JsonlFormatter(dataset_path=str(tmp_path / "a.jsonl")).iter_records()
        first = next(iterator)
        assert first[Fields.text] == "ok"
        with pytest.raises(FormatError, match="invalid JSON"):
            next(iterator)


class TestDirectoryDispatch:
    def test_directory_of_jsonl_loads_end_to_end(self, tmp_path):
        """Regression: directories used to crash with a raw IsADirectoryError."""
        (tmp_path / "a.jsonl").write_text('{"text": "alpha"}\n')
        (tmp_path / "b.jsonl").write_text('{"text": "beta"}\n')
        dataset = load_dataset(str(tmp_path))
        assert sorted(row[Fields.text] for row in dataset) == ["alpha", "beta"]

    def test_majority_unloadable_suffix_does_not_win(self, tmp_path):
        """Regression: the most common suffix used to win even when unloadable."""
        (tmp_path / "a.parquet").write_text("binary-ish")
        (tmp_path / "b.parquet").write_text("binary-ish")
        (tmp_path / "c.parquet").write_text("binary-ish")
        (tmp_path / "d.jsonl").write_text('{"text": "only loadable"}\n')
        dataset = load_dataset(str(tmp_path))
        assert len(dataset) == 1
        assert dataset[0][Fields.text] == "only loadable"

    def test_no_loadable_suffix_raises_format_error(self, tmp_path):
        (tmp_path / "a.parquet").write_text("x")
        with pytest.raises(FormatError, match="no loadable files"):
            load_formatter(str(tmp_path))

    def test_glob_dispatch(self, tmp_path):
        (tmp_path / "s1.jsonl").write_text('{"text": "a"}\n')
        (tmp_path / "s2.jsonl.gz").write_bytes(
            gzip.compress(b'{"text": "b"}\n')
        )
        dataset = load_dataset(str(tmp_path / "s*.jsonl*"))
        assert sorted(row[Fields.text] for row in dataset) == ["a", "b"]

    def test_gz_file_dispatches_on_inner_suffix(self, tmp_path):
        path = tmp_path / "data.jsonl.gz"
        path.write_bytes(gzip.compress(b'{"text": "zipped"}\n'))
        assert isinstance(load_formatter(str(path)), JsonlFormatter)


class TestMixtureFormatter:
    def test_weights_control_composition(self):
        heavy = wikipedia_like(num_samples=60, seed=1)
        light = wikipedia_like(num_samples=60, seed=2)
        mixed = mix_datasets({"heavy": heavy, "light": light}, {"heavy": 0.9, "light": 0.1},
                             max_samples=60, seed=0)
        sources = [row[Fields.source] for row in mixed]
        assert sources.count("heavy") > sources.count("light")

    def test_max_samples_respected(self):
        data = wikipedia_like(num_samples=50, seed=3)
        mixed = mix_datasets({"a": data}, {"a": 1.0}, max_samples=10)
        assert len(mixed) <= 11

    def test_weight_sequence_accepted(self):
        data = wikipedia_like(num_samples=10, seed=4)
        mixed = mix_datasets({"a": data, "b": data}, [1.0, 1.0])
        assert len(mixed) > 0

    def test_requires_datasets(self):
        with pytest.raises(FormatError):
            MixtureFormatter().load_dataset()

    def test_rejects_all_zero_weights(self):
        data = wikipedia_like(num_samples=5, seed=5)
        with pytest.raises(FormatError):
            MixtureFormatter(datasets={"a": data}, weights={"a": 0.0}).load_dataset()

    def test_deterministic_given_seed(self):
        data = wikipedia_like(num_samples=30, seed=6)
        first = mix_datasets({"a": data}, {"a": 1.0}, max_samples=10, seed=2)
        second = mix_datasets({"a": data}, {"a": 1.0}, max_samples=10, seed=2)
        assert first.to_list() == second.to_list()

    def test_max_samples_never_overshoots(self):
        """Regression: per-source rounding summed to more than max_samples."""
        heavy = wikipedia_like(num_samples=40, seed=7)
        light = wikipedia_like(num_samples=40, seed=8)
        mixed = mix_datasets(
            {"a": heavy, "b": light}, {"a": 0.5, "b": 0.5}, max_samples=7, seed=0
        )
        assert len(mixed) == 7  # int(round(3.5)) + int(round(3.5)) was 8

    @pytest.mark.parametrize("max_samples", [1, 3, 7, 10, 23])
    def test_takes_sum_exactly_to_target(self, max_samples):
        sources = {name: wikipedia_like(num_samples=30, seed=index) for index, name in enumerate("abc")}
        mixed = mix_datasets(sources, {"a": 0.33, "b": 0.33, "c": 0.34}, max_samples=max_samples)
        assert len(mixed) == max_samples

    def test_capacity_caps_without_respill(self):
        """Weights stay sampling proportions: an exhausted source under-fills
        its quota instead of inflating the other sources' shares."""
        small = wikipedia_like(num_samples=2, seed=9)
        big = wikipedia_like(num_samples=50, seed=10)
        mixed = mix_datasets({"small": small, "big": big}, {"small": 0.9, "big": 0.1},
                             max_samples=20, seed=0)
        sources = [row[Fields.source] for row in mixed]
        assert sources.count("small") == 2  # quota 18, capped by capacity
        assert sources.count("big") == 2  # quota 2, unaffected by the cap

    def test_lazy_iter_records_matches_load(self):
        data = wikipedia_like(num_samples=20, seed=11)
        formatter = MixtureFormatter(datasets={"a": data}, weights={"a": 1.0}, max_samples=10, seed=3)
        assert list(formatter.iter_records()) == formatter.load_dataset().to_list()


class TestLargestRemainderAllocation:
    def test_classic_overshoot_case(self):
        assert largest_remainder_allocation(7, [0.5, 0.5], [100, 100]) == [4, 3]

    def test_capacity_caps_each_quota(self):
        assert largest_remainder_allocation(100, [0.5, 0.5], [10, 20]) == [10, 20]

    def test_zero_total(self):
        assert largest_remainder_allocation(0, [1.0], [5]) == [0]

    def test_proportions_respected(self):
        assert largest_remainder_allocation(10, [0.9, 0.1], [100, 100]) == [9, 1]

    def test_exhausted_source_does_not_inflate_others(self):
        assert largest_remainder_allocation(20, [0.9, 0.1], [2, 100]) == [2, 2]
