"""Tests for the out-of-core streaming engine (shards, spill, two-pass resolve).

The invariant under test everywhere: ``Executor.run_streaming`` produces
*byte-identical* exports to the in-memory ``Executor.run`` path, while never
holding more than one shard of payload in memory.
"""

import json
import random
from pathlib import Path

import pytest

from repro.core.base_op import Deduplicator, Filter, Mapper, Selector
from repro.core.dataset import NestedDataset
from repro.core.errors import DatasetError, OpExecutionError
from repro.core.executor import Executor
from repro.core.exporter import Exporter
from repro.core.sample import Fields
from repro.core.stream import (
    DEFAULT_SHARD_ROWS,
    ShardStore,
    iter_record_shards,
    op_config_hash,
    plan_segments,
)
from repro.formats.jsonl_formatter import JsonlFormatter
from repro.ops import build_ops
from repro.recipes import get_recipe
from repro.synth.generators import DocumentGenerator, NoiseInjector


def messy_corpus_rows(num_samples: int = 240, seed: int = 7, duplicates: int = 40) -> list[dict]:
    """Web-like rows with noise and exact duplicates so every op category bites."""
    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)
    rng = random.Random(seed + 2)
    rows = []
    for index in range(num_samples):
        roll = rng.random()
        if roll < 0.6:
            text = generator.paragraph(num_sentences=rng.randint(1, 3))
        elif roll < 0.85:
            text = noise.corrupt(generator.paragraph(num_sentences=2), kinds=["links", "repetition"])
        else:
            text = noise.gibberish(length=rng.randint(60, 200))
        rows.append({"text": text, "meta": {"n": index}})
    for _ in range(duplicates):
        rows.append(dict(rng.choice(rows)))
    rng.shuffle(rows)
    return rows


def write_jsonl(path, rows):
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, ensure_ascii=False) + "\n")
    return path


# ----------------------------------------------------------------------
# Shard chunking and segment planning
# ----------------------------------------------------------------------
class TestIterRecordShards:
    def test_row_budget(self):
        shards = list(iter_record_shards(({"text": "x"} for _ in range(10)), max_rows=4))
        assert [len(shard) for shard in shards] == [4, 4, 2]

    def test_char_budget(self):
        records = [{"text": "abcde"} for _ in range(6)]
        shards = list(iter_record_shards(iter(records), max_chars=10))
        # each shard closes once >= 10 chars are in it (two 5-char rows)
        assert [len(shard) for shard in shards] == [2, 2, 2]

    def test_default_budget_applies(self):
        shards = list(iter_record_shards(({"text": "x"} for _ in range(5))))
        assert len(shards) == 1 and len(shards[0]) == 5
        assert DEFAULT_SHARD_ROWS > 1

    def test_both_budgets_whichever_first(self):
        records = [{"text": "abcdefghij"} for _ in range(9)]
        shards = list(iter_record_shards(iter(records), max_rows=5, max_chars=30))
        # the 30-char budget (3 rows) closes shards before the row budget
        assert [len(shard) for shard in shards] == [3, 3, 3]

    def test_invalid_budget_raises(self):
        with pytest.raises(DatasetError):
            list(iter_record_shards(iter([]), max_rows=0))


class TestPlanSegments:
    def test_sample_ops_merge_into_one_segment(self):
        ops = build_ops([
            {"whitespace_normalization_mapper": {}},
            {"text_length_filter": {"min_len": 1}},
        ])
        segments = plan_segments(ops)
        assert len(segments) == 1
        assert segments[0].global_op is None
        assert [type(op).__base__ for op in segments[0].sample_ops] == [Mapper, Filter]

    def test_global_ops_close_segments(self):
        ops = build_ops([
            {"whitespace_normalization_mapper": {}},
            {"document_deduplicator": {}},
            {"text_length_filter": {"min_len": 1}},
            {"random_selector": {"select_num": 5}},
        ])
        segments = plan_segments(ops)
        assert len(segments) == 2
        assert isinstance(segments[0].global_op, Deduplicator)
        assert isinstance(segments[1].global_op, Selector)

    def test_trailing_global_op_has_no_extra_segment(self):
        ops = build_ops([
            {"whitespace_normalization_mapper": {}},
            {"document_deduplicator": {}},
        ])
        segments = plan_segments(ops)
        assert len(segments) == 1
        assert isinstance(segments[0].global_op, Deduplicator)

    def test_empty_pipeline_yields_passthrough_segment(self):
        segments = plan_segments([])
        assert len(segments) == 1
        assert segments[0].sample_ops == [] and segments[0].global_op is None

    def test_unknown_dataset_level_op_fails_fast(self):
        from repro.core.base_op import OP

        class CustomGlobalOp(OP):
            _name = "custom_global_op"

        with pytest.raises(DatasetError, match="custom_global_op"):
            plan_segments([CustomGlobalOp()])

    def test_op_config_hash_tracks_parameters(self):
        op_a, op_b = build_ops([{"text_length_filter": {"min_len": 1}}])[0], build_ops(
            [{"text_length_filter": {"min_len": 2}}]
        )[0]
        assert op_config_hash(op_a) != op_config_hash(op_b)
        assert op_config_hash(op_a) == op_config_hash(
            build_ops([{"text_length_filter": {"min_len": 1}}])[0]
        )


# ----------------------------------------------------------------------
# Streaming vs in-memory equality
# ----------------------------------------------------------------------
#: the fig8 workload recipes (see benchmarks/test_fig8_end_to_end.py)
FIG8_RECIPES = [
    "pretrain-books-refine-en",
    "pretrain-arxiv-refine-en",
    "pretrain-c4-refine-en",
]


class TestStreamingEquality:
    @pytest.mark.parametrize("recipe_name", FIG8_RECIPES)
    def test_fig8_recipes_byte_identical(self, tmp_path, recipe_name):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows())
        process = get_recipe(recipe_name)["process"]

        memory_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "memory.jsonl"),
            "process": process,
            "work_dir": str(tmp_path / "work-memory"),
        }
        stream_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "stream.jsonl"),
            "process": process,
            "work_dir": str(tmp_path / "work-stream"),
            "max_shard_rows": 37,
        }
        result = Executor(memory_cfg).run()
        report = Executor(stream_cfg).run_streaming()

        assert report["shards"]["input_shards"] > 5
        assert report["num_output_samples"] == len(result)
        assert (tmp_path / "stream.jsonl").read_bytes() == (tmp_path / "memory.jsonl").read_bytes()

    def test_selector_and_char_budget(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows())
        process = [
            {"whitespace_normalization_mapper": {}},
            {"words_num_filter": {"min_num": 5}},
            {"topk_specified_field_selector": {"field_key": "__stats__.num_words", "topk": 50}},
            {"document_simhash_deduplicator": {}},
        ]
        memory_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "memory.jsonl"),
            "process": process,
            "work_dir": str(tmp_path / "wm"),
        }
        stream_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "stream.jsonl"),
            "process": process,
            "work_dir": str(tmp_path / "ws"),
            "max_shard_chars": 15_000,
        }
        result = Executor(memory_cfg).run()
        report = Executor(stream_cfg).run_streaming()
        assert report["num_output_samples"] == len(result) <= 50
        assert (tmp_path / "stream.jsonl").read_bytes() == (tmp_path / "memory.jsonl").read_bytes()

    def test_in_memory_dataset_input(self, tmp_path):
        dataset = NestedDataset.from_list(
            JsonlFormatter(
                dataset_path=str(write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(80)))
            ).load_dataset().to_list()
        )
        process = [{"text_length_filter": {"min_len": 40}}, {"document_deduplicator": {}}]
        stream_cfg = {
            "process": process,
            "export_path": str(tmp_path / "stream.jsonl"),
            "work_dir": str(tmp_path / "ws"),
            "max_shard_rows": 16,
        }
        memory_cfg = {
            "process": process,
            "export_path": str(tmp_path / "memory.jsonl"),
            "work_dir": str(tmp_path / "wm"),
        }
        result = Executor(memory_cfg).run(dataset)
        report = Executor(stream_cfg).run_streaming(dataset)
        assert report["num_output_samples"] == len(result)
        assert (tmp_path / "stream.jsonl").read_bytes() == (tmp_path / "memory.jsonl").read_bytes()

    def test_empty_input_streams_cleanly(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", [])
        # an empty .jsonl file is a valid (zero-record) shard
        stream_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "stream.jsonl"),
            "process": [{"document_deduplicator": {}}],
            "work_dir": str(tmp_path / "ws"),
        }
        report = Executor(stream_cfg).run_streaming()
        assert report["num_output_samples"] == 0
        assert (tmp_path / "stream.jsonl").read_text() == ""

    def test_worker_pool_streaming(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(120))
        process = [
            {"whitespace_normalization_mapper": {}},
            {"text_length_filter": {"min_len": 40}},
            {"document_deduplicator": {}},
        ]
        memory_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "memory.jsonl"),
            "process": process,
            "work_dir": str(tmp_path / "wm"),
        }
        stream_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "stream.jsonl"),
            "process": process,
            "work_dir": str(tmp_path / "ws"),
            "max_shard_rows": 30,
            "np": 2,
        }
        Executor(memory_cfg).run()
        with Executor(stream_cfg) as executor:
            report = executor.run_streaming()
            assert report["parallel"]["start_method"] is not None
        assert (tmp_path / "stream.jsonl").read_bytes() == (tmp_path / "memory.jsonl").read_bytes()


# ----------------------------------------------------------------------
# Shard-granular checkpointing
# ----------------------------------------------------------------------
def stream_config(tmp_path, input_path, process):
    return {
        "dataset_path": str(input_path),
        "export_path": str(tmp_path / "out.jsonl"),
        "process": process,
        "work_dir": str(tmp_path / "work"),
        "max_shard_rows": 25,
        "use_checkpoint": True,
        "checkpoint_dir": str(tmp_path / "ckpt"),
    }


PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"text_length_filter": {"min_len": 40}},
    {"document_deduplicator": {}},
    {"words_num_filter": {"min_num": 5}},
]


class TestShardCheckpointing:
    def test_crash_resumes_mid_corpus(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(200))
        config = stream_config(tmp_path, input_path, PROCESS)

        crashing = Executor(config)
        calls = {"count": 0}
        original = crashing.ops[0].process_batched

        def bomb(samples):
            calls["count"] += 1
            if calls["count"] > 3:
                raise RuntimeError("simulated crash")
            return original(samples)

        crashing.ops[0].process_batched = bomb
        with pytest.raises(OpExecutionError, match="simulated crash") as excinfo:
            crashing.run_streaming()
        # engine failures carry their location: op name + shard id
        assert "whitespace_normalization_mapper" in str(excinfo.value)
        assert "shard" in str(excinfo.value)

        resumed = Executor(config)
        report = resumed.run_streaming()
        assert report["shards"]["resumed_shards"] > 0

        reference_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "reference.jsonl"),
            "process": PROCESS,
            "work_dir": str(tmp_path / "wm"),
        }
        Executor(reference_cfg).run()
        assert (tmp_path / "out.jsonl").read_bytes() == (tmp_path / "reference.jsonl").read_bytes()

    def test_completed_run_is_fully_reused(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(100))
        config = stream_config(tmp_path, input_path, PROCESS)
        first = Executor(config).run_streaming()
        assert first["shards"]["executed_shards"] > 0
        second = Executor(config).run_streaming()
        assert second["shards"]["executed_shards"] == 0
        assert second["shards"]["resumed_shards"] > 0
        assert second["num_output_samples"] == first["num_output_samples"]

    def test_config_change_invalidates_stream_checkpoint(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(100))
        config = stream_config(tmp_path, input_path, PROCESS)
        Executor(config).run_streaming()

        edited = dict(config)
        edited["process"] = [
            {"whitespace_normalization_mapper": {}},
            {"text_length_filter": {"min_len": 60}},  # edited threshold
            {"document_deduplicator": {}},
            {"words_num_filter": {"min_num": 5}},
        ]
        report = Executor(edited).run_streaming()
        assert report["shards"]["resumed_shards"] == 0
        assert report["shards"]["executed_shards"] > 0

    def test_shard_budget_change_invalidates_stream_checkpoint(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(100))
        config = stream_config(tmp_path, input_path, PROCESS)
        Executor(config).run_streaming()
        edited = dict(config)
        edited["max_shard_rows"] = 40
        report = Executor(edited).run_streaming()
        assert report["shards"]["resumed_shards"] == 0

    def test_input_edit_invalidates_stream_checkpoint(self, tmp_path):
        """Regression: resuming must notice that the input file changed."""
        rows = messy_corpus_rows(100)
        input_path = write_jsonl(tmp_path / "in.jsonl", rows)
        config = stream_config(tmp_path, input_path, PROCESS)
        Executor(config).run_streaming()

        edited_rows = [{"text": "completely new " + row["text"], "meta": row["meta"]} for row in rows]
        write_jsonl(input_path, edited_rows)
        report = Executor(config).run_streaming()
        assert report["shards"]["resumed_shards"] == 0
        first_line = json.loads((tmp_path / "out.jsonl").read_text().splitlines()[0])
        assert first_line["text"].startswith("completely new")


class TestShardStore:
    def test_atomic_write_and_read(self, tmp_path):
        store = ShardStore(tmp_path / "spill")
        rows = [{"text": "a", "n": 1}, {"text": "b", "n": 2}]
        store.write_shard(0, 0, rows)
        assert store.has_shard(0, 0)
        assert store.read_shard_rows(0, 0) == rows
        assert not store.has_shard(0, 1)

    def test_clear(self, tmp_path):
        store = ShardStore(tmp_path / "spill")
        store.write_shard(0, 0, [{"text": "a"}])
        store.write_shard(1, 3, [{"text": "b"}])
        store.clear()
        assert not store.has_shard(0, 0)
        assert not store.has_shard(1, 3)


# ----------------------------------------------------------------------
# Sharded streaming export
# ----------------------------------------------------------------------
class TestShardedExport:
    def test_numbered_gzip_shards_round_trip(self, tmp_path):
        rows = [{"text": f"document number {index} with some body"} for index in range(25)]
        exporter = Exporter(tmp_path / "out.jsonl.gz", shard_rows=10)
        paths = exporter.export_stream(iter(rows))
        assert [path.name for path in paths] == [
            "out-00001.jsonl.gz",
            "out-00002.jsonl.gz",
            "out-00003.jsonl.gz",
        ]
        # the shard directory loads back as one dataset, in order
        loaded = JsonlFormatter(dataset_path=str(tmp_path)).load_dataset()
        assert [row[Fields.text] for row in loaded] == [row["text"] for row in rows]

    def test_char_capped_shards(self, tmp_path):
        rows = [{"text": "x" * 100} for _ in range(10)]
        exporter = Exporter(tmp_path / "out.jsonl", shard_chars=250)
        paths = exporter.export_stream(iter(rows))
        assert len(paths) == 4  # three ~113-char lines exceed the 250-char cap
        total = sum(len(path.read_text().splitlines()) for path in paths)
        assert total == 10

    def test_streaming_executor_shard_output(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(80))
        stream_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "export" / "out.jsonl.gz"),
            "process": [{"text_length_filter": {"min_len": 40}}],
            "work_dir": str(tmp_path / "ws"),
            "max_shard_rows": 20,
        }
        report = Executor(stream_cfg).run_streaming(shard_output=True)
        assert len(report["export_paths"]) > 1
        loaded = JsonlFormatter(dataset_path=str(tmp_path / "export")).load_dataset()
        assert len(loaded) == report["num_output_samples"]

    def test_shard_output_without_budget_still_shards(self, tmp_path):
        """Regression: --shard-output with no explicit budget wrote one file."""
        rows = [{"text": f"row {index} body text here"} for index in range(10)]
        input_path = write_jsonl(tmp_path / "in.jsonl", rows)
        stream_cfg = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "out.jsonl"),
            "process": [],
            "work_dir": str(tmp_path / "ws"),
        }
        report = Executor(stream_cfg).run_streaming(shard_output=True)
        assert [Path(p).name for p in map(str, report["export_paths"])] == ["out-00001.jsonl"]

    def test_empty_stream_writes_one_empty_shard(self, tmp_path):
        exporter = Exporter(tmp_path / "out.jsonl", shard_rows=5)
        paths = exporter.export_stream(iter([]))
        assert [path.name for path in paths] == ["out-00001.jsonl"]
        assert paths[0].read_text() == ""

    def test_json_array_cannot_shard(self, tmp_path):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError, match="line-oriented"):
            Exporter(tmp_path / "out.json", shard_rows=5)

    def test_rerun_removes_stale_higher_numbered_shards(self, tmp_path):
        """Regression: a smaller re-export left old shards mixed with new."""
        rows = [{"text": f"row {index}"} for index in range(10)]
        Exporter(tmp_path / "out.jsonl", shard_rows=2).export_stream(iter(rows))
        assert (tmp_path / "out-00005.jsonl").exists()
        paths = Exporter(tmp_path / "out.jsonl", shard_rows=2).export_stream(iter(rows[:4]))
        assert len(paths) == 2
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "out-00001.jsonl",
            "out-00002.jsonl",
        ]


class TestStreamingFailureSafety:
    def test_failed_run_leaves_no_spill_behind(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(60))
        config = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "out.jsonl"),
            "process": PROCESS,
            "work_dir": str(tmp_path / "work"),
            "max_shard_rows": 10,
        }
        executor = Executor(config)

        def bomb(samples):
            raise RuntimeError("boom")

        executor.ops[0].process_batched = bomb
        with pytest.raises(OpExecutionError, match="boom"):
            executor.run_streaming()
        spill_root = tmp_path / "work" / "stream-spill"
        assert not any(spill_root.iterdir())

    def test_nonstandard_dedup_hash_key_fails_fast(self, tmp_path):
        from repro.core.base_op import Deduplicator
        from repro.core.stream import signature_column_names

        class OddDeduplicator(Deduplicator):
            _name = "odd_deduplicator"

        with pytest.raises(DatasetError, match="odd_deduplicator"):
            signature_column_names(OddDeduplicator(), ["text", "__odd_hash__"], "text")
