"""Tests for the fluent :class:`repro.api.Pipeline` — the public API layer.

The two acceptance contracts of the redesign live here:

* **recipe round-tripping** — for every built-in recipe,
  ``Pipeline.from_recipe(r).to_recipe()`` rebuilds an operator chain with
  *identical* incremental fingerprints;
* **mode-agnostic execution** — ``Pipeline.read(...).export(..., mode=...)``
  produces byte-identical exports to the equivalent explicit
  ``Executor.run()`` / ``run_streaming()`` calls on the fig8 recipes, and
  ``mode="auto"`` picks streaming on an over-budget corpus.
"""

import json
import random

import pytest

from repro.api import Pipeline, ResourceBudget
from repro.core.errors import ConfigError, RegistryError, SchemaError
from repro.core.dataset import NestedDataset
from repro.core.executor import Executor
from repro.recipes import BUILT_IN_RECIPES, get_recipe
from repro.synth.generators import DocumentGenerator, NoiseInjector

#: the fig8 workload recipes (see benchmarks/test_fig8_end_to_end.py)
FIG8_RECIPES = [
    "pretrain-books-refine-en",
    "pretrain-arxiv-refine-en",
    "pretrain-c4-refine-en",
]


def messy_corpus_rows(num_samples: int = 160, seed: int = 7, duplicates: int = 24) -> list[dict]:
    """Web-like rows with noise and duplicates so every op category bites."""
    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)
    rng = random.Random(seed + 2)
    rows = []
    for index in range(num_samples):
        roll = rng.random()
        if roll < 0.6:
            text = generator.paragraph(num_sentences=rng.randint(1, 3))
        elif roll < 0.85:
            text = noise.corrupt(generator.paragraph(num_sentences=2), kinds=["links", "repetition"])
        else:
            text = noise.gibberish(length=rng.randint(60, 200))
        rows.append({"text": text, "meta": {"n": index}})
    for _ in range(duplicates):
        rows.append(dict(rng.choice(rows)))
    rng.shuffle(rows)
    return rows


def write_jsonl(path, rows):
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, ensure_ascii=False) + "\n")
    return path


@pytest.fixture()
def corpus_file(tmp_path):
    return write_jsonl(tmp_path / "corpus.jsonl", messy_corpus_rows())


class TestBuilders:
    def test_building_is_lazy_and_immutable(self):
        base = Pipeline.read("missing-input.jsonl")  # nothing is loaded yet
        extended = base.filter("text_length_filter", min_len=5)
        assert len(base) == 0 and len(extended) == 1
        assert base.steps == ()
        # the shared prefix can be extended independently
        other = base.apply("clean_html_mapper")
        assert [name for name, _params in other.steps] == ["clean_html_mapper"]

    def test_category_builders_enforce_categories(self):
        pipeline = Pipeline.new()
        assert pipeline.map("clean_html_mapper").steps[0][0] == "clean_html_mapper"
        assert pipeline.filter("text_length_filter").steps[0][0] == "text_length_filter"
        assert pipeline.dedup("document_deduplicator").steps[0][0] == "document_deduplicator"
        assert pipeline.select("random_selector", select_num=5).steps[0][0] == "random_selector"
        with pytest.raises(ConfigError, match="is a mapper, not a filter"):
            pipeline.filter("clean_html_mapper")
        with pytest.raises(ConfigError, match="use .filter"):
            pipeline.map("text_length_filter")

    def test_apply_is_category_agnostic(self):
        pipeline = Pipeline.new().apply("clean_html_mapper").apply("document_deduplicator")
        assert len(pipeline) == 2

    def test_unknown_op_suggests(self):
        with pytest.raises(RegistryError, match="did you mean: text_length_filter"):
            Pipeline.new().filter("text_lenght_filter")

    def test_schema_violations_raise_with_every_issue(self):
        with pytest.raises(SchemaError) as excinfo:
            Pipeline.new().filter("text_length_filter", min_len=-5, max_len="big")
        assert len(excinfo.value.issues) == 2
        assert "min_len" in str(excinfo.value) and "max_len" in str(excinfo.value)

    def test_unknown_option_suggests(self):
        with pytest.raises(ConfigError, match="did you mean"):
            Pipeline.new().options(use_cach=True)

    def test_process_option_rejected(self):
        with pytest.raises(ConfigError, match="not via options"):
            Pipeline.new().options(process=[{"clean_html_mapper": {}}])

    def test_repr_and_describe(self):
        pipeline = (
            Pipeline.read("in.jsonl")
            .apply("clean_html_mapper")
            .filter("text_length_filter", min_len=50)
            .options(np=2)
        )
        assert "clean_html_mapper -> text_length_filter" in repr(pipeline)
        description = pipeline.describe()
        assert "read in.jsonl" in description
        assert "text_length_filter(min_len=50)" in description
        assert "np=2" in description


class TestRecipeRoundTrip:
    @pytest.mark.parametrize("name", sorted(BUILT_IN_RECIPES))
    def test_builtin_recipes_round_trip_with_identical_fingerprints(self, name):
        pipeline = Pipeline.from_recipe(name)
        rebuilt = Pipeline.from_recipe(pipeline.to_recipe())
        chain = pipeline.op_fingerprint_chain()
        assert chain, f"{name} produced an empty op chain"
        assert rebuilt.op_fingerprint_chain() == chain
        # the recipe body itself survives the trip (settings and steps)
        assert rebuilt.to_recipe() == pipeline.to_recipe()

    def test_from_recipe_accepts_all_forms(self, tmp_path):
        recipe = get_recipe("dedup-only-exact")
        from_dict = Pipeline.from_recipe(recipe)
        from_name = Pipeline.from_recipe("dedup-only-exact")
        path = tmp_path / "recipe.json"
        path.write_text(json.dumps(recipe), encoding="utf-8")
        from_file = Pipeline.from_recipe(str(path))
        from repro.core.config import load_config

        from_config = Pipeline.from_recipe(load_config(recipe))
        chains = {
            tuple(p.op_fingerprint_chain())
            for p in (from_dict, from_name, from_file, from_config)
        }
        assert len(chains) == 1

    def test_unknown_recipe_name_suggests(self):
        with pytest.raises(RegistryError, match="did you mean"):
            Pipeline.from_recipe("pretrain-c4-refine")

    def test_fingerprint_chain_matches_engine_fingerprints(self, corpus_file):
        """The advertised identity: chains equal the engines' stamped fingerprints."""
        pipeline = Pipeline.read(str(corpus_file)).filter("text_length_filter", min_len=5)
        dataset = NestedDataset.from_list([{"text": "hello world, a long enough text"}])
        op = pipeline.build_ops()[0]
        out = op.run(dataset)
        expected = pipeline.op_fingerprint_chain(seed=dataset.fingerprint)[-1]
        assert out.fingerprint == expected

    def test_invalid_recipe_params_rejected_at_build_time(self):
        with pytest.raises(SchemaError):
            Pipeline.from_recipe(
                {"process": [{"text_length_filter": {"min_len": -1}}]}
            )


class TestExecution:
    def test_collect_runs_in_memory(self, corpus_file):
        pipeline = (
            Pipeline.read(str(corpus_file))
            .filter("words_num_filter", min_num=5)
            .dedup("document_deduplicator")
        )
        result = pipeline.collect()
        assert isinstance(result, NestedDataset)
        assert 0 < len(result) < len(messy_corpus_rows())

    def test_run_accepts_in_memory_dataset(self, tmp_path):
        dataset = NestedDataset.from_list(
            [{"text": "a sufficiently long document for the filter"}, {"text": "tiny"}]
        )
        pipeline = Pipeline.new(work_dir=str(tmp_path / "w")).filter(
            "text_length_filter", min_len=10
        )
        report = pipeline.run(dataset=dataset)
        assert report["num_output_samples"] == 1
        assert report["planner"]["mode"] == "memory"

    def test_auto_mode_picks_streaming_on_over_budget_corpus(self, corpus_file, tmp_path):
        """The acceptance contract: mode="auto" streams an over-budget input."""
        pipeline = (
            Pipeline.read(str(corpus_file))
            .filter("text_length_filter", min_len=5)
            .options(work_dir=str(tmp_path / "w"), max_shard_rows=48)
        )
        report = pipeline.run(budget=ResourceBudget(max_memory_bytes=1024))
        assert report["mode"] == "streaming"
        assert report["shards"]["input_shards"] > 1
        # and the same pipeline under a roomy budget stays in memory
        roomy = pipeline.options(work_dir=str(tmp_path / "w2")).run(
            budget=ResourceBudget(max_memory_bytes=1 << 30)
        )
        assert roomy["mode"] == "memory"
        assert roomy["num_output_samples"] == report["num_output_samples"]

    def test_memory_budget_option_drives_auto(self, corpus_file, tmp_path):
        report = (
            Pipeline.read(str(corpus_file))
            .filter("text_length_filter", min_len=5)
            .options(work_dir=str(tmp_path / "w"), memory_budget=1024, max_shard_rows=64)
            .run()
        )
        assert report["mode"] == "streaming"

    def test_plan_previews_without_executing(self, corpus_file, tmp_path):
        pipeline = Pipeline.read(str(corpus_file)).filter("text_length_filter")
        plan = pipeline.plan(budget=ResourceBudget(1024))
        assert plan.mode == "streaming"
        assert not (tmp_path / "outputs").exists()


class TestByteIdenticalExports:
    @pytest.mark.parametrize("recipe_name", FIG8_RECIPES)
    def test_fig8_recipes_export_identically_across_entries(self, tmp_path, recipe_name):
        """Acceptance contract: fluent exports == explicit Executor calls, bytewise."""
        corpus = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows())
        process = get_recipe(recipe_name)["process"]

        # explicit in-memory Executor.run()
        memory_export = tmp_path / "memory.jsonl"
        Executor(
            {
                "dataset_path": str(corpus),
                "export_path": str(memory_export),
                "process": process,
                "work_dir": str(tmp_path / "wm"),
            }
        ).run()

        # explicit streaming Executor.run_streaming()
        stream_export = tmp_path / "stream.jsonl"
        Executor(
            {
                "dataset_path": str(corpus),
                "export_path": str(stream_export),
                "process": process,
                "work_dir": str(tmp_path / "ws"),
                "max_shard_rows": 37,
            }
        ).run_streaming()
        assert stream_export.read_bytes() == memory_export.read_bytes()

        # the fluent pipeline, auto mode, tiny budget -> streams; same bytes
        pipeline = Pipeline.from_recipe(
            {"process": process, "work_dir": str(tmp_path / "wp"), "max_shard_rows": 37}
        ).options(dataset_path=str(corpus))
        auto_export = tmp_path / "auto.jsonl"
        report = pipeline.export(auto_export, budget=ResourceBudget(max_memory_bytes=512))
        assert report["mode"] == "streaming"
        assert auto_export.read_bytes() == memory_export.read_bytes()

        # and in forced memory mode, again the same bytes
        memory_mode_export = tmp_path / "memmode.jsonl"
        pipeline.options(work_dir=str(tmp_path / "wp2")).export(
            memory_mode_export, mode="memory"
        )
        assert memory_mode_export.read_bytes() == memory_export.read_bytes()
