"""Tests for the built-in recipe catalogue and the pre-training / fine-tuning builders."""

import pytest

from repro.core.config import load_config
from repro.core.executor import Executor
from repro.core.sample import Fields
from repro.recipes import (
    BUILT_IN_RECIPES,
    FINETUNE_CATEGORY_COUNTS,
    PRETRAIN_COMPONENTS,
    build_finetune_pool,
    build_pretrain_mixture,
    data_juicer_finetune_dataset,
    get_recipe,
    list_recipes,
    mixture_stats,
    paper_table7_rows,
    paper_table8_rows,
    random_finetune_dataset,
)


class TestRecipeCatalogue:
    def test_catalogue_has_at_least_twenty_recipes(self):
        # the paper advertises "more than 20 high-quality and diverse data recipes"
        assert len(BUILT_IN_RECIPES) >= 20

    def test_all_recipes_are_valid_configs(self):
        for name in list_recipes():
            config = load_config(get_recipe(name))
            assert config.project_name == name

    def test_get_recipe_returns_copy(self):
        first = get_recipe("pretrain-common-crawl-refine-en")
        first["process"].clear()
        assert get_recipe("pretrain-common-crawl-refine-en")["process"]

    def test_unknown_recipe(self):
        from repro.core.errors import RegistryError

        with pytest.raises(RegistryError, match="not a registered recipe"):
            get_recipe("pretrain-the-moon")

    def test_unknown_recipe_suggests_close_matches(self):
        from repro.core.errors import RegistryError

        with pytest.raises(RegistryError, match="did you mean.*pretrain-c4-refine-en"):
            get_recipe("pretrain-c4-refine")

    def test_pretrain_and_finetune_scenarios_covered(self):
        names = " ".join(list_recipes())
        assert "pretrain-" in names and "finetune-" in names and "zh" in names


class TestPretrainMixture:
    def test_table7_components_and_proportions(self):
        rows = paper_table7_rows()
        assert len(rows) == 15
        assert abs(sum(row["proportion"] for row in rows) - 1.0) < 0.01
        assert rows[0]["component"] == "CommonCrawl"

    def test_component_epochs_upweight_books_and_wikipedia(self):
        assert PRETRAIN_COMPONENTS["Wikipedia"]["epochs"] == 2.5
        assert PRETRAIN_COMPONENTS["Books"]["epochs"] == 2.0

    def test_build_mixture_sources(self):
        mixture = build_pretrain_mixture(samples_per_component=15, seed=0)
        sources = {row[Fields.source] for row in mixture}
        assert "CommonCrawl" in sources and "Wikipedia" in sources

    def test_refined_mixture_is_smaller_than_raw(self):
        raw = build_pretrain_mixture(samples_per_component=15, seed=0, refined=False)
        refined = build_pretrain_mixture(samples_per_component=15, seed=0, refined=True)
        assert 0 < len(refined) < len(raw)

    def test_mixture_stats_proportions_sum_to_one(self):
        mixture = build_pretrain_mixture(samples_per_component=10, seed=1)
        stats = mixture_stats(mixture)
        assert abs(sum(entry.sampling_proportion for entry in stats) - 1.0) < 1e-6
        assert all(entry.num_samples > 0 for entry in stats)


class TestFinetunePool:
    def test_table8_rows_match_totals(self):
        rows = paper_table8_rows()
        languages = [row for row in rows if row["category"] == "Language"]
        assert sum(row["num_datasets"] for row in languages) == 45
        assert FINETUNE_CATEGORY_COUNTS["Usage"]["Instruct Fine-Tuning (IFT)"] == 17

    def test_pool_tags(self):
        pool = build_finetune_pool(num_datasets=6, samples_per_dataset=20, seed=0)
        assert len(pool) == 6
        usages = {row[Fields.meta]["usage"] for dataset in pool.values() for row in dataset}
        assert usages == {"IFT", "CFT"}

    def test_random_dataset_size(self):
        pool = build_finetune_pool(num_datasets=4, samples_per_dataset=30, seed=1)
        assert len(random_finetune_dataset(pool, num_samples=50, seed=0)) == 50

    def test_data_juicer_dataset_is_english_cft_only(self):
        pool = build_finetune_pool(num_datasets=6, samples_per_dataset=40, seed=2)
        refined = data_juicer_finetune_dataset(pool, num_samples=60, language="EN", usage="CFT")
        assert len(refined) <= 60
        assert all(row[Fields.meta]["language"] == "EN" for row in refined)
        assert all(row[Fields.meta]["usage"] == "CFT" for row in refined)


class TestRecipeExecution:
    def test_code_recipe_removes_copyright_and_low_star_files(self):
        from repro.synth import code_like

        corpus = code_like(num_samples=40, seed=3, quality=0.5)
        refined = Executor(get_recipe("pretrain-code-refine")).run(corpus)
        assert 0 < len(refined) < len(corpus)
        assert all("All rights reserved" not in row[Fields.text] for row in refined)

    def test_arxiv_recipe_strips_latex_boilerplate(self):
        from repro.synth import arxiv_like

        corpus = arxiv_like(num_samples=20, seed=4)
        refined = Executor(get_recipe("pretrain-arxiv-refine-en")).run(corpus)
        assert all("\\documentclass" not in row[Fields.text] for row in refined)
        assert all("bibitem" not in row[Fields.text] for row in refined)
