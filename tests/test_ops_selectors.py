"""Tests for the dataset-level selectors (top-k, frequency, random, quantile range)."""

import pytest

from repro.core.dataset import NestedDataset
from repro.ops.selectors.frequency_specified_field_selector import FrequencySpecifiedFieldSelector
from repro.ops.selectors.random_selector import RandomSelector
from repro.ops.selectors.range_specified_field_selector import RangeSpecifiedFieldSelector
from repro.ops.selectors.topk_specified_field_selector import TopkSpecifiedFieldSelector


def scored_dataset():
    return NestedDataset.from_list(
        [{"text": f"doc {index}", "meta": {"score": index, "source": "a" if index % 2 else "b"}}
         for index in range(10)]
    )


class TestTopkSelector:
    def test_topk_highest(self):
        out = TopkSpecifiedFieldSelector(field_key="meta.score", topk=3).process(scored_dataset())
        assert sorted(row["meta"]["score"] for row in out) == [7, 8, 9]

    def test_topk_lowest_with_reverse_false(self):
        out = TopkSpecifiedFieldSelector(field_key="meta.score", topk=2, reverse=False).process(
            scored_dataset()
        )
        assert sorted(row["meta"]["score"] for row in out) == [0, 1]

    def test_top_ratio(self):
        out = TopkSpecifiedFieldSelector(field_key="meta.score", top_ratio=0.5).process(scored_dataset())
        assert len(out) == 5

    def test_missing_field_sorts_last(self):
        data = NestedDataset.from_list([{"text": "a"}, {"text": "b", "meta": {"score": 5}}])
        out = TopkSpecifiedFieldSelector(field_key="meta.score", topk=1).process(data)
        assert out[0]["text"] == "b"

    def test_requires_budget(self):
        with pytest.raises(ValueError):
            TopkSpecifiedFieldSelector(field_key="meta.score")

    def test_requires_field(self):
        with pytest.raises(ValueError):
            TopkSpecifiedFieldSelector(topk=1)


class TestFrequencySelector:
    def test_keeps_most_frequent_groups(self):
        data = NestedDataset.from_list(
            [{"text": str(i), "meta": {"lang": "en"}} for i in range(6)]
            + [{"text": str(i), "meta": {"lang": "zh"}} for i in range(2)]
        )
        out = FrequencySpecifiedFieldSelector(field_key="meta.lang", topk=1).process(data)
        assert all(row["meta"]["lang"] == "en" for row in out)

    def test_max_per_group_balances(self):
        out = FrequencySpecifiedFieldSelector(
            field_key="meta.source", topk=2, max_per_group=2
        ).process(scored_dataset())
        assert len(out) == 4

    def test_top_ratio_groups(self):
        out = FrequencySpecifiedFieldSelector(field_key="meta.source", top_ratio=0.5).process(
            scored_dataset()
        )
        assert len({row["meta"]["source"] for row in out}) == 1

    def test_empty_dataset(self):
        empty = NestedDataset.empty()
        assert len(FrequencySpecifiedFieldSelector(field_key="meta.x", topk=1).process(empty)) == 0


class TestRandomSelector:
    def test_select_num(self):
        out = RandomSelector(select_num=4, seed=1).process(scored_dataset())
        assert len(out) == 4

    def test_select_ratio(self):
        out = RandomSelector(select_ratio=0.3, seed=1).process(scored_dataset())
        assert len(out) == 3

    def test_deterministic_given_seed(self):
        first = RandomSelector(select_num=5, seed=9).process(scored_dataset())
        second = RandomSelector(select_num=5, seed=9).process(scored_dataset())
        assert first.to_list() == second.to_list()

    def test_requires_budget(self):
        with pytest.raises(ValueError):
            RandomSelector()

    def test_num_larger_than_dataset(self):
        assert len(RandomSelector(select_num=100).process(scored_dataset())) == 10


class TestRangeSelector:
    def test_middle_band(self):
        out = RangeSpecifiedFieldSelector(
            field_key="meta.score", lower_percentile=0.2, upper_percentile=0.8
        ).process(scored_dataset())
        scores = [row["meta"]["score"] for row in out]
        assert min(scores) >= 1 and max(scores) <= 8

    def test_full_band_keeps_all_numeric(self):
        out = RangeSpecifiedFieldSelector(field_key="meta.score").process(scored_dataset())
        assert len(out) == 10

    def test_invalid_percentiles(self):
        with pytest.raises(ValueError):
            RangeSpecifiedFieldSelector(field_key="x", lower_percentile=0.9, upper_percentile=0.1)

    def test_no_numeric_values_selects_nothing(self):
        data = NestedDataset.from_list([{"text": "a", "meta": {"score": "high"}}])
        assert len(RangeSpecifiedFieldSelector(field_key="meta.score").process(data)) == 0
