"""Tests for recipe configuration loading/validation and the end-to-end executor."""

import json

import pytest

from repro.core.config import RecipeConfig, load_config, save_config, validate_config
from repro.core.dataset import NestedDataset
from repro.core.errors import ConfigError
from repro.core.executor import Executor
from repro.core.sample import Fields


def sample_rows():
    return [
        {"text": "This is a reasonably long and clean document about data systems."},
        {"text": "tiny"},
        {"text": "This is a reasonably long and clean document about data systems."},
        {"text": "Visit https://spam.example.com now " * 5},
    ]


PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"clean_links_mapper": {}},
    {"text_length_filter": {"min_len": 20}},
    {"document_deduplicator": {}},
]


class TestConfig:
    def test_load_from_dict(self):
        config = load_config({"project_name": "p", "process": PROCESS})
        assert isinstance(config, RecipeConfig)
        assert config.op_names() == [
            "whitespace_normalization_mapper",
            "clean_links_mapper",
            "text_length_filter",
            "document_deduplicator",
        ]

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConfigError, match="unknown operator"):
            load_config({"process": [{"nonexistent_op": {}}]})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown recipe keys"):
            load_config({"process": [], "typo_key": 1})

    def test_invalid_process_entry_rejected(self):
        with pytest.raises(ConfigError):
            load_config({"process": [{"a": {}, "b": {}}]})

    def test_invalid_np_rejected(self):
        with pytest.raises(ConfigError):
            validate_config(RecipeConfig(np=0))

    def test_load_from_json_file(self, tmp_path):
        path = tmp_path / "recipe.json"
        path.write_text(json.dumps({"project_name": "file-recipe", "process": PROCESS}))
        config = load_config(path)
        assert config.project_name == "file-recipe"

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            load_config(tmp_path / "missing.yaml")

    def test_save_and_reload_roundtrip(self, tmp_path):
        config = load_config({"project_name": "round", "process": PROCESS})
        path = save_config(config, tmp_path / "recipe.json")
        reloaded = load_config(path)
        assert reloaded.project_name == "round"
        assert reloaded.op_names() == config.op_names()

    def test_yaml_roundtrip_when_available(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        config = load_config({"project_name": "yamlized", "process": PROCESS})
        path = save_config(config, tmp_path / "recipe.yaml")
        assert yaml.safe_load(path.read_text())["project_name"] == "yamlized"
        assert load_config(path).project_name == "yamlized"


class TestExecutor:
    def test_run_on_in_memory_dataset(self):
        executor = Executor({"process": PROCESS})
        out = executor.run(NestedDataset.from_list(sample_rows()))
        # tiny doc dropped, duplicate removed
        assert len(out) == 2
        assert executor.last_report["num_output_samples"] == 2

    def test_run_requires_dataset_or_path(self):
        with pytest.raises(ValueError):
            Executor({"process": PROCESS}).run()

    def test_run_from_jsonl_path_and_export(self, tmp_path):
        input_path = tmp_path / "input.jsonl"
        with input_path.open("w") as handle:
            for row in sample_rows():
                handle.write(json.dumps(row) + "\n")
        export_path = tmp_path / "out.jsonl"
        executor = Executor(
            {
                "dataset_path": str(input_path),
                "export_path": str(export_path),
                "process": PROCESS,
                "work_dir": str(tmp_path / "work"),
            }
        )
        out = executor.run()
        assert export_path.exists()
        assert len(export_path.read_text().splitlines()) == len(out)

    def test_fusion_and_no_fusion_agree(self):
        data = NestedDataset.from_list(sample_rows())
        plain = Executor({"process": PROCESS, "op_fusion": False}).run(data)
        fused = Executor({"process": PROCESS, "op_fusion": True}).run(data)
        assert sorted(row["text"] for row in plain) == sorted(row["text"] for row in fused)

    def test_tracer_report_present_when_enabled(self):
        executor = Executor({"process": PROCESS, "open_tracer": True, "work_dir": "./outputs-test"})
        executor.run(NestedDataset.from_list(sample_rows()))
        assert len(executor.last_report["trace"]) == len(PROCESS)

    def test_cache_hits_on_second_run(self, tmp_path):
        config = {
            "process": PROCESS,
            "use_cache": True,
            "cache_dir": str(tmp_path / "cache"),
        }
        data = NestedDataset.from_list(sample_rows())
        first = Executor(config)
        first.run(data)
        assert first.last_report["cache"]["hits"] == 0
        second = Executor(config)
        second.run(data)
        assert second.last_report["cache"]["hits"] == len(PROCESS)

    def test_checkpoint_resume(self, tmp_path):
        config = {
            "process": PROCESS,
            "use_checkpoint": True,
            "checkpoint_dir": str(tmp_path / "ckpt"),
        }
        data = NestedDataset.from_list(sample_rows())
        out_first = Executor(config).run(data)
        # a second executor finds the completed checkpoint and resumes from it
        out_second = Executor(config).run(data)
        assert sorted(r["text"] for r in out_first) == sorted(r["text"] for r in out_second)

    def test_checkpoint_saved_on_cache_hits(self, tmp_path):
        """A resume after a fully cache-hit run must not restart from a stale op index."""
        config = {
            "process": PROCESS,
            "use_cache": True,
            "cache_dir": str(tmp_path / "cache"),
            "use_checkpoint": True,
            "checkpoint_dir": str(tmp_path / "ckpt"),
        }
        data = NestedDataset.from_list(sample_rows())
        Executor(config).run(data)

        # wipe the checkpoint, then re-run: every op is now a cache hit, and
        # the checkpoint must still advance to the end of the recipe
        second = Executor(config)
        second.checkpoint.clear()
        second.run(data)
        assert second.last_report["cache"]["hits"] == len(PROCESS)
        _, op_index, op_names = second.checkpoint.load()
        assert op_index == len(PROCESS)
        assert op_names == [op.name for op in second.ops]

    def test_plan_describes_ops(self):
        executor = Executor({"process": PROCESS, "op_fusion": False})
        categories = [entry["category"] for entry in executor.plan]
        assert categories == ["mapper", "mapper", "filter", "deduplicator"]

    def test_stale_checkpoint_not_resumed_after_config_change(self, tmp_path):
        """Regression: resume used to match on op *names* only, so editing a
        filter's threshold silently reused data produced by the old config."""
        data = NestedDataset.from_list(
            [{"text": "short doc here padd"}, {"text": "a much longer document " * 4}]
        )
        base = {
            "process": [{"text_length_filter": {"min_len": 10}}],
            "use_checkpoint": True,
            "checkpoint_dir": str(tmp_path / "ckpt"),
        }
        first = Executor(base).run(data)
        assert len(first) == 2

        # same op name, different threshold: the checkpoint must be ignored
        edited = dict(base)
        edited["process"] = [{"text_length_filter": {"min_len": 50}}]
        second = Executor(edited).run(data)
        assert len(second) == 1

        # unchanged config still resumes from the completed checkpoint
        third = Executor(edited).run(data)
        assert len(third) == 1

    def test_checkpoint_state_records_op_hashes(self, tmp_path):
        config = {
            "process": PROCESS,
            "use_checkpoint": True,
            "checkpoint_dir": str(tmp_path / "ckpt"),
        }
        executor = Executor(config)
        executor.run(NestedDataset.from_list(sample_rows()))
        state = executor.checkpoint.read_state()
        assert len(state["op_hashes"]) == len(PROCESS)
