"""Tests for the distributed runners, the scalability sweep and the baseline pipelines."""

import os

import pytest

from repro.baselines import DolmaLikePipeline, RedPajamaLikePipeline
from repro.core.dataset import NestedDataset
from repro.core.executor import Executor
from repro.distributed.cluster import ClusterSpec, ScalabilitySweep
from repro.distributed.partition import merge_partitions, partition_rows, split_dataset
from repro.distributed.runners import BeamLikeRunner, RayLikeRunner
from repro.synth import common_crawl_like

PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"clean_links_mapper": {}},
    {"text_length_filter": {"min_len": 50}},
    {"words_num_filter": {"min_num": 10}},
    {"document_deduplicator": {}},
]


@pytest.fixture(scope="module")
def corpus():
    return common_crawl_like(num_samples=60, seed=5, duplicate_ratio=0.15)


@pytest.fixture(scope="module")
def reference_output(corpus):
    return Executor({"process": PROCESS, "op_fusion": False}).run(corpus)


class TestPartitioning:
    def test_split_sizes_balanced(self):
        dataset = NestedDataset.from_list([{"text": str(i)} for i in range(10)])
        parts = split_dataset(dataset, 3)
        assert [len(part) for part in parts] == [4, 3, 3]

    def test_split_more_partitions_than_rows(self):
        dataset = NestedDataset.from_list([{"text": "a"}, {"text": "b"}])
        assert len(split_dataset(dataset, 8)) == 2

    def test_merge_restores_all_rows(self):
        dataset = NestedDataset.from_list([{"text": str(i)} for i in range(7)])
        assert len(merge_partitions(split_dataset(dataset, 3))) == 7

    def test_partition_rows_invalid(self):
        with pytest.raises(ValueError):
            partition_rows([{"text": "a"}], 0)


class TestRunners:
    def test_ray_like_matches_single_machine_result(self, corpus, reference_output):
        result = RayLikeRunner(num_nodes=3).run(corpus, PROCESS)
        assert sorted(r["text"] for r in result.dataset) == sorted(
            r["text"] for r in reference_output
        )

    def test_single_node_runs_in_process(self, corpus, reference_output):
        result = RayLikeRunner(num_nodes=1, use_processes=False).run(corpus, PROCESS)
        assert len(result.dataset) == len(reference_output)

    def test_beam_like_matches_results_but_adds_load_time(self, corpus, reference_output):
        result = BeamLikeRunner(num_nodes=2).run(corpus, PROCESS)
        assert len(result.dataset) == len(reference_output)
        assert result.load_time_s > 0.0

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            RayLikeRunner(num_nodes=0)

    def test_split_process_list_does_not_instantiate_ops(self):
        """Classification goes through the registry classes, never ``load_ops``."""
        from repro.core.base_op import Selector
        from repro.core.registry import OPERATORS

        class ExplodingSelector(Selector):
            def __init__(self, **kwargs):
                raise AssertionError("classification must not instantiate operators")

        OPERATORS.modules["exploding_selector_for_test"] = ExplodingSelector
        try:
            sample_level, dataset_level = RayLikeRunner()._split_process_list(
                PROCESS + [{"exploding_selector_for_test": {}}]
            )
        finally:
            del OPERATORS.modules["exploding_selector_for_test"]
        assert dataset_level == [{"document_deduplicator": {}}, {"exploding_selector_for_test": {}}]
        assert len(sample_level) == len(PROCESS) - 1

    def test_run_result_reports_measured_and_simulated_time(self, corpus):
        result = RayLikeRunner(num_nodes=2).run(corpus, PROCESS)
        assert result.wall_time_s > 0.0
        assert result.simulated_time_s > 0.0
        # and the run reports the pool workers that actually served it —
        # out-of-process pids, never the coordinator, bounded by the pool size
        assert result.worker_pids
        assert os.getpid() not in result.worker_pids
        assert len(set(result.worker_pids)) <= 2

    def test_inline_run_reports_no_worker_pids(self, corpus):
        result = RayLikeRunner(num_nodes=1, use_processes=False).run(corpus, PROCESS)
        assert result.worker_pids == []
        assert result.simulated_time_s > 0.0


class TestScalabilitySweep:
    def test_sweep_produces_point_per_backend_and_node_count(self, corpus):
        sweep = ScalabilitySweep(process_list=PROCESS, node_counts=[1, 2])
        points = sweep.run(corpus, backends=("ray", "beam"))
        assert len(points) == 4
        assert {point.backend for point in points} == {"ray", "beam"}

    def test_unknown_backend_rejected(self, corpus):
        with pytest.raises(ValueError):
            ScalabilitySweep(process_list=PROCESS, node_counts=[1]).run(corpus, backends=("spark",))

    def test_cluster_spec_total_workers(self):
        assert ClusterSpec(num_nodes=4, cores_per_node=2).total_workers == 8


class TestBaselines:
    def test_redpajama_like_same_semantics(self, corpus, reference_output):
        result = RedPajamaLikePipeline(PROCESS).run(corpus)
        assert sorted(row["text"] for row in result.rows) == sorted(
            row["text"] for row in reference_output
        )

    def test_redpajama_like_reports_stage_times(self, corpus):
        result = RedPajamaLikePipeline(PROCESS).run(corpus)
        assert set(result.stage_times) == {
            "whitespace_normalization_mapper",
            "clean_links_mapper",
            "text_length_filter",
            "words_num_filter",
            "document_deduplicator",
        }
        assert result.wall_time_s > 0

    def test_dolma_like_same_semantics(self, corpus, reference_output):
        result = DolmaLikePipeline(PROCESS, num_shards=3).run(corpus)
        assert sorted(row["text"] for row in result.rows) == sorted(
            row["text"] for row in reference_output
        )

    def test_dolma_like_stage_breakdown(self, corpus):
        result = DolmaLikePipeline(PROCESS).run(corpus)
        assert set(result.stage_times) == {"shard", "tag", "filter", "dedup"}

    def test_fused_executor_faster_than_redpajama_baseline(self, corpus):
        import time

        # a tokenization-heavy recipe, where context sharing / OP fusion pays off
        process = PROCESS[:-1] + [
            {"word_repetition_filter": {"rep_len": 5, "max_ratio": 0.9}},
            {"stopwords_filter": {"min_ratio": 0.0}},
            {"flagged_words_filter": {"max_ratio": 1.0}},
            PROCESS[-1],
        ]
        executor = Executor({"process": process, "op_fusion": True})
        start = time.perf_counter()
        executor.run(corpus)
        juicer_time = time.perf_counter() - start
        baseline = RedPajamaLikePipeline(process).run(corpus)
        # the optimized executor should not be slower than the copy-heavy
        # baseline (the Figure 8 benchmarks quantify the gap on larger data)
        assert juicer_time <= baseline.wall_time_s * 1.2
