"""Batched/per-row equivalence: every op, identical rows, stats, fingerprints.

The batched columnar engine must be a pure execution-strategy change: for
every registered operator, ``run(dataset, batched=True)`` (the default) and
``run(dataset, batched=False)`` (the legacy per-row path) must yield the same
surviving rows, the same stats values and the same dataset fingerprint — so
cache and checkpoint keys are independent of the execution strategy.
"""

import pytest

from repro.core.base_op import Deduplicator, Filter, Mapper
from repro.core.dataset import NestedDataset
from repro.core.fusion import FusedFilter, fuse_operators
from repro.core.registry import OPERATORS
from repro.core.tracer import Tracer
from repro.ops import load_ops
from repro.synth import common_crawl_like

#: ops where the default parameters need a nudge so the test corpus actually
#: exercises both kept and dropped rows / non-trivial rewrites
PARAM_OVERRIDES = {
    "text_length_filter": {"min_len": 30, "max_len": 800},
    "words_num_filter": {"min_num": 5, "max_num": 200},
    "character_repetition_filter": {"rep_len": 5, "max_ratio": 0.4},
    "word_repetition_filter": {"rep_len": 3, "max_ratio": 0.6},
    "special_characters_filter": {"max_ratio": 0.3},
    "stopwords_filter": {"min_ratio": 0.05},
    "flagged_words_filter": {"max_ratio": 0.1},
    "alphanumeric_filter": {"min_ratio": 0.4},
    "truncate_text_mapper": {"max_chars": 120},
}


def sample_level_op_names():
    names = []
    for name in OPERATORS.list():
        cls = OPERATORS.get(name)
        if issubclass(cls, (Mapper, Filter, Deduplicator)):
            names.append(name)
    return names


@pytest.fixture(scope="module")
def corpus():
    base = common_crawl_like(num_samples=40, seed=11, duplicate_ratio=0.2).to_list()
    # edge rows: empty text, non-string text, missing text, pre-existing stats
    base += [
        {"text": ""},
        {"text": None},
        {"meta": {"source": "nowhere"}},
        {"text": "already counted", "__stats__": {"text_len": 999}},
        {"text": "repeat repeat repeat repeat repeat repeat repeat repeat"},
        {"text": "ÃƒÂ© mojibake â€™ text Â· with ugly bytes", "__stats__": {}},
        {"text": "short"},
    ]
    return NestedDataset.from_list(base)


def run_both_ways(op, dataset, tracer=None):
    batched = op.run(dataset, batched=True, tracer=tracer)
    per_row = op.run(dataset, batched=False, tracer=tracer)
    return batched, per_row


@pytest.mark.parametrize("op_name", sample_level_op_names())
def test_batched_path_matches_per_row(op_name, corpus):
    op = load_ops([{op_name: PARAM_OVERRIDES.get(op_name, {})}])[0]
    batched, per_row = run_both_ways(op, corpus)
    assert batched.to_list() == per_row.to_list()
    assert batched.fingerprint == per_row.fingerprint


@pytest.mark.parametrize(
    "op_name", ["text_length_filter", "words_num_filter", "special_characters_filter"]
)
def test_filters_drop_rows_on_this_corpus(op_name, corpus):
    """Guard the equivalence test against vacuity: the overridden params must
    actually reject some rows, otherwise the keep/drop paths aren't compared."""
    op = load_ops([{op_name: PARAM_OVERRIDES.get(op_name, {})}])[0]
    assert 0 < len(op.run(corpus)) < len(corpus)


def test_fused_filter_short_circuit_matches_per_row(corpus):
    ops = load_ops(
        [
            {"words_num_filter": {"min_num": 5}},
            {"word_repetition_filter": {"rep_len": 3, "max_ratio": 0.6}},
            {"stopwords_filter": {"min_ratio": 0.05}},
            {"flagged_words_filter": {"max_ratio": 0.5}},
        ]
    )
    fused = fuse_operators(ops)
    assert any(isinstance(op, FusedFilter) for op in fused)
    fused_op = next(op for op in fused if isinstance(op, FusedFilter))
    batched, per_row = run_both_ways(fused_op, corpus)
    assert batched.to_list() == per_row.to_list()
    assert batched.fingerprint == per_row.fingerprint


def test_fused_filter_with_tracer_records_all_rows(corpus):
    """With a tracer, the batched path must not short-circuit stats: the trace
    sees rejected rows with their full statistics, like the per-row path."""
    ops = load_ops(
        [
            {"words_num_filter": {"min_num": 5}},
            {"word_repetition_filter": {"rep_len": 3, "max_ratio": 0.6}},
        ]
    )
    fused_op = next(op for op in fuse_operators(ops) if isinstance(op, FusedFilter))
    tracer_batched, tracer_per_row = Tracer(), Tracer()
    batched = fused_op.run(corpus, batched=True, tracer=tracer_batched)
    per_row = fused_op.run(corpus, batched=False, tracer=tracer_per_row)
    assert batched.to_list() == per_row.to_list()
    assert len(tracer_batched.records) == len(tracer_per_row.records)


@pytest.mark.parametrize(
    "op_name",
    [
        "special_characters_filter",
        "digit_ratio_filter",
        "whitespace_ratio_filter",
        "character_repetition_filter",
    ],
)
def test_unpaired_surrogates_do_not_crash_batched_path(op_name):
    """JSON corpora can legally contain lone surrogates (e.g. ``\\ud800``);
    the vectorised kernels must fall back instead of crashing on the
    utf-32 encode."""
    import json

    bad = json.loads('"broken \\ud800 surrogate text here, long enough to count"')
    dataset = NestedDataset.from_list(
        [{"text": bad}, {"text": "a perfectly ordinary clean document right here"}]
    )
    op = load_ops([{op_name: {}}])[0]
    batched, per_row = run_both_ways(op, dataset)
    assert batched.to_list() == per_row.to_list()
    assert batched.fingerprint == per_row.fingerprint


def test_dotted_text_key_falls_back_to_per_row(corpus):
    nested = NestedDataset.from_list(
        [{"meta": {"body": "some reasonably long nested text body"}}, {"meta": {"body": "x"}}]
    )
    op = load_ops([{"text_length_filter": {"min_len": 10, "text_key": "meta.body"}}])[0]
    batched, per_row = run_both_ways(op, nested)
    assert batched.to_list() == per_row.to_list()
    assert batched.fingerprint == per_row.fingerprint
    assert len(batched) == 1


def test_pipeline_fingerprints_are_incremental_and_strategy_independent(corpus):
    process = [
        {"fix_unicode_mapper": {}},
        {"whitespace_normalization_mapper": {}},
        {"text_length_filter": {"min_len": 30}},
        {"words_num_filter": {"min_num": 5}},
        {"document_deduplicator": {}},
    ]
    batched_ds, per_row_ds = corpus, corpus
    for op_batched, op_per_row in zip(load_ops(process), load_ops(process)):
        expected = batched_ds.derive_fingerprint(op_batched.name, op_batched.config())
        batched_ds = op_batched.run(batched_ds, batched=True)
        per_row_ds = op_per_row.run(per_row_ds, batched=False)
        if not isinstance(op_batched, Deduplicator):
            # Mapper/Filter outputs carry the incremental fingerprint directly
            assert batched_ds.fingerprint == expected
        assert batched_ds.fingerprint == per_row_ds.fingerprint
        assert batched_ds.to_list() == per_row_ds.to_list()


def test_fused_filter_config_embeds_member_parameters(corpus):
    """Regression: the generic OP.config() serialised members via param-less
    reprs, so fused plans with different thresholds shared fingerprints and
    cache keys."""
    def fused_with(min_num):
        ops = load_ops(
            [{"words_num_filter": {"min_num": min_num}}, {"word_repetition_filter": {}}]
        )
        return next(op for op in fuse_operators(ops) if isinstance(op, FusedFilter))

    loose, strict = fused_with(2), fused_with(10**6)
    assert loose.config() != strict.config()
    assert corpus.derive_fingerprint(loose.name, loose.config()) != corpus.derive_fingerprint(
        strict.name, strict.config()
    )
    assert loose.run(corpus).fingerprint != strict.run(corpus).fingerprint


def test_checkpoint_resume_preserves_fingerprint(tmp_path, corpus):
    """Regression: checkpoint load rebuilt the dataset with a content-probe
    fingerprint, so every downstream cache key missed after a resume."""
    from repro.core.checkpoint import CheckpointManager

    op = load_ops([{"text_length_filter": {"min_len": 30}}])[0]
    out = op.run(corpus)
    manager = CheckpointManager(tmp_path)
    manager.save(out, 1, [op.name])
    restored, op_index, _names = manager.load()
    assert op_index == 1
    assert restored.fingerprint == out.fingerprint


def test_batch_size_does_not_change_results_or_fingerprint(corpus):
    small = load_ops([{"words_num_filter": {"min_num": 5, "batch_size": 3}}])[0]
    large = load_ops([{"words_num_filter": {"min_num": 5, "batch_size": 4096}}])[0]
    assert small.batch_size == 3 and large.batch_size == 4096
    out_small, out_large = small.run(corpus), large.run(corpus)
    assert out_small.to_list() == out_large.to_list()
    assert out_small.fingerprint == out_large.fingerprint
    # batch_size is execution tuning, not op identity: cache keys must agree
    assert small.config() == large.config()
