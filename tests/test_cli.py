"""Tests for the zero-code command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "data.jsonl"
    rows = [
        {"text": "This is a reasonably long and clean document about data processing systems."},
        {"text": "tiny"},
        {"text": "This is a reasonably long and clean document about data processing systems."},
    ]
    path.write_text("\n".join(json.dumps(row) for row in rows))
    return path


class TestListCommands:
    def test_list_ops(self, capsys):
        assert main(["list-ops"]) == 0
        output = capsys.readouterr().out
        assert "text_length_filter" in output
        assert len(output.splitlines()) >= 50

    def test_list_recipes(self, capsys):
        assert main(["list-recipes"]) == 0
        assert "pretrain-c4-refine-en" in capsys.readouterr().out


class TestProcess:
    def test_process_with_builtin_recipe(self, dataset_file, tmp_path, capsys):
        export = tmp_path / "out.jsonl"
        code = main(
            [
                "process",
                "--dataset", str(dataset_file),
                "--recipe", "dedup-only-exact",
                "--export", str(export),
                "--work-dir", str(tmp_path / "work"),
            ]
        )
        assert code == 0
        assert len(export.read_text().splitlines()) == 2  # duplicate removed
        assert "kept 2 samples" in capsys.readouterr().out

    def test_process_stream_matches_in_memory(self, dataset_file, tmp_path, capsys):
        memory_export = tmp_path / "memory.jsonl"
        stream_export = tmp_path / "stream.jsonl"
        common = ["process", "--dataset", str(dataset_file), "--recipe", "dedup-only-exact"]
        assert main(common + ["--export", str(memory_export), "--work-dir", str(tmp_path / "wm")]) == 0
        code = main(
            common
            + [
                "--export", str(stream_export),
                "--work-dir", str(tmp_path / "ws"),
                "--stream", "--max-shard-rows", "2",
            ]
        )
        assert code == 0
        assert "kept 2 samples" in capsys.readouterr().out
        assert stream_export.read_bytes() == memory_export.read_bytes()

    def test_shard_output_requires_stream(self, dataset_file, tmp_path):
        with pytest.raises(SystemExit, match="requires --stream"):
            main(
                [
                    "process",
                    "--dataset", str(dataset_file),
                    "--recipe", "dedup-only-exact",
                    "--export", str(tmp_path / "out.jsonl"),
                    "--work-dir", str(tmp_path / "work"),
                    "--shard-output",
                ]
            )

    def test_process_with_recipe_file(self, dataset_file, tmp_path):
        recipe_path = tmp_path / "recipe.json"
        recipe_path.write_text(
            json.dumps({"project_name": "cli", "process": [{"text_length_filter": {"min_len": 10}}]})
        )
        export = tmp_path / "out.jsonl"
        code = main(
            [
                "process",
                "--dataset", str(dataset_file),
                "--recipe-file", str(recipe_path),
                "--export", str(export),
            ]
        )
        assert code == 0
        assert len(export.read_text().splitlines()) == 2  # 'tiny' dropped

    def test_recipe_and_recipe_file_are_exclusive(self, dataset_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "process",
                    "--dataset", str(dataset_file),
                    "--recipe", "dedup-only-exact",
                    "--recipe-file", "whatever.json",
                ]
            )

    def test_missing_recipe_rejected(self, dataset_file):
        with pytest.raises(SystemExit):
            main(["process", "--dataset", str(dataset_file)])


class TestAnalyzeAndSynth:
    def test_analyze_prints_probe_and_writes_summary(self, dataset_file, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        assert main(["analyze", "--dataset", str(dataset_file), "--output", str(summary_path)]) == 0
        assert "Data probe over 3 samples" in capsys.readouterr().out
        assert "text_len" in json.loads(summary_path.read_text())

    def test_synth_writes_corpus(self, tmp_path, capsys):
        output = tmp_path / "corpus.jsonl"
        assert main(["synth", "--corpus", "wikipedia", "--num-samples", "7", "--output", str(output)]) == 0
        assert len(output.read_text().splitlines()) == 7
        assert "wrote 7 samples" in capsys.readouterr().out

    def test_unknown_corpus_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["synth", "--corpus", "the-pile", "--output", str(tmp_path / "x.jsonl")])
