"""Tests for the zero-code command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def dataset_file(tmp_path):
    path = tmp_path / "data.jsonl"
    rows = [
        {"text": "This is a reasonably long and clean document about data processing systems."},
        {"text": "tiny"},
        {"text": "This is a reasonably long and clean document about data processing systems."},
    ]
    path.write_text("\n".join(json.dumps(row) for row in rows))
    return path


class TestListCommands:
    def test_list_ops(self, capsys):
        assert main(["list-ops"]) == 0
        output = capsys.readouterr().out
        assert "text_length_filter" in output
        assert len(output.splitlines()) >= 50

    def test_list_recipes(self, capsys):
        assert main(["list-recipes"]) == 0
        assert "pretrain-c4-refine-en" in capsys.readouterr().out


class TestProcess:
    def test_process_with_builtin_recipe(self, dataset_file, tmp_path, capsys):
        export = tmp_path / "out.jsonl"
        code = main(
            [
                "process",
                "--dataset", str(dataset_file),
                "--recipe", "dedup-only-exact",
                "--export", str(export),
                "--work-dir", str(tmp_path / "work"),
            ]
        )
        assert code == 0
        assert len(export.read_text().splitlines()) == 2  # duplicate removed
        assert "kept 2 samples" in capsys.readouterr().out

    def test_process_stream_matches_in_memory(self, dataset_file, tmp_path, capsys):
        memory_export = tmp_path / "memory.jsonl"
        stream_export = tmp_path / "stream.jsonl"
        common = ["process", "--dataset", str(dataset_file), "--recipe", "dedup-only-exact"]
        assert main(common + ["--export", str(memory_export), "--work-dir", str(tmp_path / "wm")]) == 0
        code = main(
            common
            + [
                "--export", str(stream_export),
                "--work-dir", str(tmp_path / "ws"),
                "--stream", "--max-shard-rows", "2",
            ]
        )
        assert code == 0
        assert "kept 2 samples" in capsys.readouterr().out
        assert stream_export.read_bytes() == memory_export.read_bytes()

    def test_shard_output_implies_streaming(self, dataset_file, tmp_path, capsys):
        code = main(
            [
                "process",
                "--dataset", str(dataset_file),
                "--recipe", "dedup-only-exact",
                "--export", str(tmp_path / "out.jsonl.gz"),
                "--work-dir", str(tmp_path / "work"),
                "--shard-output",
            ]
        )
        assert code == 0
        assert "plan: mode=streaming" in capsys.readouterr().out
        assert list(tmp_path.glob("out-*.jsonl.gz"))

    def test_shard_output_conflicts_with_memory_mode(self, dataset_file, tmp_path):
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                [
                    "process",
                    "--dataset", str(dataset_file),
                    "--recipe", "dedup-only-exact",
                    "--export", str(tmp_path / "out.jsonl"),
                    "--work-dir", str(tmp_path / "work"),
                    "--shard-output", "--mode", "memory",
                ]
            )

    def test_process_with_recipe_file(self, dataset_file, tmp_path):
        recipe_path = tmp_path / "recipe.json"
        recipe_path.write_text(
            json.dumps({"project_name": "cli", "process": [{"text_length_filter": {"min_len": 10}}]})
        )
        export = tmp_path / "out.jsonl"
        code = main(
            [
                "process",
                "--dataset", str(dataset_file),
                "--recipe-file", str(recipe_path),
                "--export", str(export),
            ]
        )
        assert code == 0
        assert len(export.read_text().splitlines()) == 2  # 'tiny' dropped

    def test_recipe_and_recipe_file_are_exclusive(self, dataset_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "process",
                    "--dataset", str(dataset_file),
                    "--recipe", "dedup-only-exact",
                    "--recipe-file", "whatever.json",
                ]
            )

    def test_missing_recipe_rejected(self, dataset_file):
        with pytest.raises(SystemExit):
            main(["process", "--dataset", str(dataset_file)])


class TestProcessModes:
    def test_mode_auto_prints_plan(self, dataset_file, tmp_path, capsys):
        code = main(
            [
                "process",
                "--dataset", str(dataset_file),
                "--recipe", "dedup-only-exact",
                "--export", str(tmp_path / "out.jsonl"),
                "--work-dir", str(tmp_path / "work"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan: mode=memory" in out

    def test_mode_streaming_and_budget_driven_auto(self, dataset_file, tmp_path, capsys):
        explicit = tmp_path / "explicit.jsonl"
        budgeted = tmp_path / "budgeted.jsonl"
        common = ["process", "--dataset", str(dataset_file), "--recipe", "dedup-only-exact"]
        assert main(
            common
            + ["--export", str(explicit), "--work-dir", str(tmp_path / "w1"), "--mode", "streaming"]
        ) == 0
        assert "plan: mode=streaming" in capsys.readouterr().out
        # a 1 MiB budget forces streaming via auto mode too... the dataset is
        # tiny, so instead assert auto+budget still produces identical bytes
        assert main(
            common
            + ["--export", str(budgeted), "--work-dir", str(tmp_path / "w2"), "--memory-budget-mb", "1"]
        ) == 0
        assert budgeted.read_bytes() == explicit.read_bytes()

    def test_stream_flag_conflicts_with_memory_mode(self, dataset_file, tmp_path):
        with pytest.raises(SystemExit, match="conflicts"):
            main(
                [
                    "process",
                    "--dataset", str(dataset_file),
                    "--recipe", "dedup-only-exact",
                    "--work-dir", str(tmp_path / "w"),
                    "--stream", "--mode", "memory",
                ]
            )

    def test_schema_invalid_recipe_file_fails_before_running(self, dataset_file, tmp_path):
        from repro.core.errors import SchemaError

        recipe_path = tmp_path / "recipe.json"
        recipe_path.write_text(
            json.dumps({"process": [{"text_length_filter": {"min_len": -3}}]})
        )
        with pytest.raises(SchemaError, match="min_len"):
            main(
                [
                    "process",
                    "--dataset", str(dataset_file),
                    "--recipe-file", str(recipe_path),
                    "--work-dir", str(tmp_path / "w"),
                ]
            )


class TestValidateRecipe:
    def test_valid_builtin_recipe(self, capsys):
        assert main(["validate-recipe", "--recipe", "dedup-only-exact"]) == 0
        assert "valid" in capsys.readouterr().out

    def test_all_builtins_valid(self, capsys):
        assert main(["validate-recipe", "--all"]) == 0
        assert "all 23 built-in recipes are valid" in capsys.readouterr().out

    def test_bad_recipe_file_reports_every_problem(self, tmp_path, capsys):
        recipe_path = tmp_path / "bad.json"
        recipe_path.write_text(
            json.dumps(
                {
                    "npp": 3,
                    "process": [
                        {"text_length_filter": {"min_len": -5, "max_len": "big"}},
                        {"txt_length_filter": {}},
                    ],
                }
            )
        )
        assert main(["validate-recipe", "--recipe-file", str(recipe_path)]) == 1
        out = capsys.readouterr().out
        assert "4 problem(s)" in out
        assert "did you mean: np" in out
        assert "text_length_filter.min_len" in out and "below the minimum" in out
        assert "text_length_filter.max_len" in out and "wrong type" in out
        assert "did you mean: text_length_filter" in out

    def test_requires_a_recipe_argument(self):
        with pytest.raises(SystemExit):
            main(["validate-recipe"])

    def test_unknown_builtin_name_reported_not_raised(self, capsys):
        assert main(["validate-recipe", "--recipe", "dedup-only-exat"]) == 1
        out = capsys.readouterr().out
        assert "did you mean" in out and "dedup-only-exact" in out

    def test_missing_recipe_file_reported_not_raised(self, tmp_path, capsys):
        assert main(["validate-recipe", "--recipe-file", str(tmp_path / "nope.yaml")]) == 1
        assert "recipe file not found" in capsys.readouterr().out

    def test_recipe_and_file_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="not both"):
            main(
                [
                    "validate-recipe",
                    "--recipe", "dedup-only-exact",
                    "--recipe-file", str(tmp_path / "x.json"),
                ]
            )


class TestAnalyzeAndSynth:
    def test_analyze_prints_probe_and_writes_summary(self, dataset_file, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        assert main(["analyze", "--dataset", str(dataset_file), "--output", str(summary_path)]) == 0
        assert "Data probe over 3 samples" in capsys.readouterr().out
        assert "text_len" in json.loads(summary_path.read_text())

    def test_synth_writes_corpus(self, tmp_path, capsys):
        output = tmp_path / "corpus.jsonl"
        assert main(["synth", "--corpus", "wikipedia", "--num-samples", "7", "--output", str(output)]) == 0
        assert len(output.read_text().splitlines()) == 7
        assert "wrote 7 samples" in capsys.readouterr().out

    def test_unknown_corpus_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["synth", "--corpus", "the-pile", "--output", str(tmp_path / "x.jsonl")])
