"""Tests for the proxy LLM substrate: bigram LM, trainer, benchmark suite, leaderboard, judge."""

import math

import pytest

from repro.synth import common_crawl_like, wikipedia_like
from repro.tools.evaluator.benchmarks import HELM_CORE_TASKS, get_task, task_names
from repro.tools.evaluator.harness import Evaluator, Leaderboard
from repro.tools.evaluator.judge import PairwiseJudge
from repro.tools.evaluator.ngram_lm import BigramLanguageModel, tokenize
from repro.tools.evaluator.reference_models import ReferenceModel, ReferenceModelRegistry
from repro.tools.evaluator.trainer import ProxyTrainer


@pytest.fixture(scope="module")
def trainer():
    return ProxyTrainer()


@pytest.fixture(scope="module")
def clean_model(trainer):
    return trainer.train(wikipedia_like(num_samples=60, seed=0), name="clean")


@pytest.fixture(scope="module")
def dirty_model(trainer):
    return trainer.train(
        common_crawl_like(num_samples=60, seed=1, quality=0.1, duplicate_ratio=0.2), name="dirty"
    )


class TestBigramLanguageModel:
    def test_training_counts_tokens(self):
        model = BigramLanguageModel().fit(["one two three", "four five"])
        assert model.total_tokens == 5

    def test_token_budget_respected(self):
        model = BigramLanguageModel().fit(["word " * 100], max_tokens=30)
        assert model.total_tokens == 30

    def test_perplexity_lower_on_seen_text(self):
        text = "the data system processes the corpus"
        model = BigramLanguageModel().fit([text] * 5)
        assert model.perplexity([text]) < model.perplexity(["völlig unbekannte wörter hier"])

    def test_perplexity_empty_model(self):
        assert math.isinf(BigramLanguageModel().perplexity([]))

    def test_generation_deterministic_given_seed(self):
        model = BigramLanguageModel().fit(["a b c d e f g"] * 3)
        assert model.generate(10, seed=1) == model.generate(10, seed=1)

    def test_distinct_n_in_unit_interval(self):
        model = BigramLanguageModel().fit(["varied words appear in this longer training text"] * 2)
        assert 0.0 <= model.distinct_n(2) <= 1.0

    def test_tokenize_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]


class TestProxyTrainer:
    def test_component_scores_in_unit_interval(self, clean_model):
        for value in clean_model.component_scores().values():
            assert 0.0 <= value <= 1.0

    def test_clean_data_beats_dirty_on_cleanliness(self, clean_model, dirty_model):
        assert clean_model.cleanliness_score() >= dirty_model.cleanliness_score()

    def test_dirty_data_has_duplicates(self, dirty_model):
        assert dirty_model.duplicate_fraction > 0.0

    def test_more_tokens_increase_coverage(self, trainer):
        corpus = wikipedia_like(num_samples=60, seed=2)
        small = trainer.train(corpus, name="small", num_tokens=500)
        large = trainer.train(corpus, name="large", num_tokens=5000)
        assert large.coverage_score() > small.coverage_score()

    def test_effective_tokens_capped_by_budget(self, trainer):
        model = trainer.train(wikipedia_like(num_samples=30, seed=3), num_tokens=1000)
        assert model.effective_tokens <= 1000


class TestBenchmarks:
    def test_sixteen_tasks(self):
        assert len(HELM_CORE_TASKS) == 16
        assert len(task_names()) == 16

    def test_scores_bounded(self, clean_model):
        for task in HELM_CORE_TASKS:
            assert 0.0 <= task.score(clean_model) <= 100.0

    def test_scores_deterministic(self, clean_model):
        task = get_task("MMLU")
        assert task.score(clean_model) == task.score(clean_model)

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            get_task("GSM8K")

    def test_clean_model_beats_dirty_on_average(self, clean_model, dirty_model):
        evaluator = Evaluator()
        assert (
            evaluator.evaluate(clean_model).average_score
            > evaluator.evaluate(dirty_model).average_score
        )


class TestEvaluatorAndLeaderboard:
    def test_report_contains_all_tasks(self, clean_model):
        report = Evaluator().evaluate(clean_model)
        assert set(report.task_scores) == set(task_names())
        assert report.as_dict()["model_name"] == "clean"

    def test_leaderboard_mean_ranking(self, clean_model, dirty_model):
        evaluator = Evaluator()
        board = Leaderboard("mean")
        board.add(evaluator.evaluate(clean_model))
        board.add(evaluator.evaluate(dirty_model))
        assert board.ranking()[0][0] == "clean"
        assert "Leaderboard" in board.render()

    @pytest.mark.parametrize("aggregation", ["rank", "normalized"])
    def test_alternative_aggregations_keep_order(self, aggregation, clean_model, dirty_model):
        evaluator = Evaluator()
        board = Leaderboard(aggregation)
        board.add(evaluator.evaluate(clean_model))
        board.add(evaluator.evaluate(dirty_model))
        assert board.ranking()[0][0] == "clean"

    def test_invalid_aggregation(self):
        from repro.core.errors import EvaluationError

        with pytest.raises(EvaluationError):
            Leaderboard("median-of-medians")


class TestReferenceModels:
    def test_register_and_rank(self):
        registry = ReferenceModelRegistry()
        registry.register(ReferenceModel("a", "data-a", 100, 30.0))
        registry.register(ReferenceModel("b", "data-b", 100, 40.0))
        assert registry.all()[0].name == "b"
        assert len(registry) == 2
        assert "a" in registry

    def test_duplicate_rejected_without_overwrite(self):
        registry = ReferenceModelRegistry()
        registry.register(ReferenceModel("a", "d", 1, 1.0))
        with pytest.raises(ValueError):
            registry.register(ReferenceModel("a", "d", 1, 2.0))

    def test_register_report(self, clean_model):
        registry = ReferenceModelRegistry()
        report = Evaluator().evaluate(clean_model)
        registry.register_report(report, training_data="wiki", num_tokens=123)
        assert registry.get("clean").num_tokens == 123

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            ReferenceModelRegistry().get("missing")


class TestPairwiseJudge:
    def test_tallies_sum_to_prompts(self, clean_model, dirty_model):
        result = PairwiseJudge(num_prompts=50).compare(clean_model, dirty_model)
        assert result.num_prompts == 50

    def test_better_model_wins(self, clean_model, dirty_model):
        result = PairwiseJudge(num_prompts=100).compare(clean_model, dirty_model)
        assert result.wins_a > result.wins_b

    def test_self_comparison_is_all_ties(self, clean_model):
        result = PairwiseJudge(num_prompts=40).compare(clean_model, clean_model)
        assert result.ties == 40

    def test_deterministic(self, clean_model, dirty_model):
        judge = PairwiseJudge(num_prompts=30)
        assert judge.compare(clean_model, dirty_model).as_dict() == judge.compare(
            clean_model, dirty_model
        ).as_dict()
