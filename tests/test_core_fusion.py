"""Tests for context management, operator fusion and reordering."""

from repro.core.context import ContextKeys, context_size, enable_context, get_or_compute
from repro.core.dataset import NestedDataset
from repro.core.fusion import FusedFilter, describe_plan, fuse_operators, run_fused_pipeline
from repro.core.registry import OPERATORS
from repro.ops import load_ops


def build(name, **params):
    return OPERATORS.get(name)(**params)


def noisy_dataset():
    return NestedDataset.from_list(
        [
            {"text": "The data processing system improves the training corpus quality greatly."},
            {"text": "word word word word word word word word word word word word"},
            {"text": "ok"},
        ]
    )


class TestContext:
    def test_get_or_compute_without_context_always_computes(self):
        calls = []
        sample = {"text": "x"}
        get_or_compute(sample, "words", lambda: calls.append(1) or ["x"])
        get_or_compute(sample, "words", lambda: calls.append(1) or ["x"])
        assert len(calls) == 2

    def test_get_or_compute_with_context_caches(self):
        calls = []
        sample = enable_context({"text": "x"})
        get_or_compute(sample, "words", lambda: calls.append(1) or ["x"])
        get_or_compute(sample, "words", lambda: calls.append(1) or ["never"])
        assert len(calls) == 1
        assert context_size(sample) == 1

    def test_context_size_zero_without_context(self):
        assert context_size({"text": "x"}) == 0


class TestFuseOperators:
    def fusible_filters(self):
        return [
            build("words_num_filter", min_num=1),
            build("word_repetition_filter", rep_len=3, max_ratio=0.6),
            build("stopwords_filter", min_ratio=0.0),
        ]

    def test_fuses_context_sharing_filters(self):
        fused = fuse_operators(self.fusible_filters())
        assert len(fused) == 1
        assert isinstance(fused[0], FusedFilter)
        assert len(fused[0].fused_filters) == 3

    def test_non_fusible_filters_kept_separate(self):
        ops = [build("text_length_filter", min_len=1), build("special_characters_filter")]
        fused = fuse_operators(ops)
        assert len(fused) == 2
        assert not any(isinstance(op, FusedFilter) for op in fused)

    def test_mapper_breaks_filter_groups(self):
        ops = [
            build("words_num_filter", min_num=1),
            build("lowercase_mapper"),
            build("word_repetition_filter"),
        ]
        fused = fuse_operators(ops)
        # the two fusible filters are separated by a mapper, so no fusion happens
        assert not any(isinstance(op, FusedFilter) for op in fused)

    def test_fused_group_reordered_after_plain_filters(self):
        ops = [
            build("words_num_filter", min_num=1),
            build("text_length_filter", min_len=1),
            build("word_repetition_filter"),
        ]
        fused = fuse_operators(ops)
        assert fused[0].name == "text_length_filter"
        assert isinstance(fused[1], FusedFilter)

    def test_describe_plan_reports_members(self):
        plan = describe_plan(fuse_operators(self.fusible_filters()))
        assert plan[0]["category"] == "fused_filter"
        assert "words_num_filter" in plan[0]["members"]


class TestFusedExecution:
    def test_fused_filter_equivalent_to_sequential(self):
        filters = [
            build("words_num_filter", min_num=3),
            build("word_repetition_filter", rep_len=3, max_ratio=0.5),
            build("stopwords_filter", min_ratio=0.05),
        ]
        data = noisy_dataset()
        sequential = data
        for op in filters:
            sequential = op.run(sequential)
        fused = run_fused_pipeline(data, fuse_operators(filters))
        assert sorted(row["text"] for row in sequential) == sorted(row["text"] for row in fused)

    def test_fused_filter_cleans_context_from_output(self):
        from repro.core.sample import Fields

        fused = fuse_operators(
            [build("words_num_filter", min_num=1), build("word_repetition_filter")]
        )
        out = run_fused_pipeline(noisy_dataset(), fused)
        assert all(Fields.context not in row or not row[Fields.context] for row in out)

    def test_fused_filter_single_pass_writes_all_stats(self):
        from repro.core.sample import Fields, StatsKeys

        fused_filter = FusedFilter(
            [build("words_num_filter", min_num=0), build("word_repetition_filter", max_ratio=1.0)]
        )
        sample = fused_filter.compute_stats({"text": "a few simple words here"})
        assert StatsKeys.num_words in sample[Fields.stats]
        assert StatsKeys.word_rep_ratio in sample[Fields.stats]

    def test_empty_fused_filter_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FusedFilter([])

    def test_load_ops_then_fuse_from_recipe(self):
        process = [
            {"whitespace_normalization_mapper": {}},
            {"words_num_filter": {"min_num": 1}},
            {"word_repetition_filter": {}},
            {"flagged_words_filter": {}},
            {"document_deduplicator": {}},
        ]
        fused = fuse_operators(load_ops(process))
        names = [op.name for op in fused]
        assert names[0] == "whitespace_normalization_mapper"
        assert any(name.startswith("fused_filter(") for name in names)
        assert names[-1] == "document_deduplicator"
