"""Tests for the cleaning/anonymization mappers (HTML, links, e-mails, IPs, unicode...)."""

from repro.ops.mappers.clean_copyright_mapper import CleanCopyrightMapper
from repro.ops.mappers.clean_email_mapper import CleanEmailMapper
from repro.ops.mappers.clean_html_mapper import CleanHtmlMapper
from repro.ops.mappers.clean_ip_mapper import CleanIpMapper
from repro.ops.mappers.clean_links_mapper import CleanLinksMapper
from repro.ops.mappers.fix_unicode_mapper import FixUnicodeMapper
from repro.ops.mappers.punctuation_normalization_mapper import PunctuationNormalizationMapper
from repro.ops.mappers.remove_non_printable_mapper import RemoveNonPrintableMapper
from repro.ops.mappers.whitespace_normalization_mapper import WhitespaceNormalizationMapper


def text_of(mapper, text):
    return mapper.process({"text": text})["text"]


class TestCleanEmail:
    def test_removes_addresses(self):
        assert text_of(CleanEmailMapper(), "contact me at user.name+tag@example.co.uk today") == (
            "contact me at  today"
        )

    def test_replacement_token(self):
        assert "[EMAIL]" in text_of(CleanEmailMapper(repl="[EMAIL]"), "a@b.com wrote")

    def test_leaves_plain_text_alone(self):
        assert text_of(CleanEmailMapper(), "no addresses here") == "no addresses here"


class TestCleanLinks:
    def test_removes_http_and_www(self):
        cleaned = text_of(CleanLinksMapper(), "see https://a.example.com/x?y=1 and www.b.org/page")
        assert "example.com" not in cleaned and "b.org" not in cleaned

    def test_removes_ftp(self):
        assert "ftp" not in text_of(CleanLinksMapper(), "get it from ftp://files.example.com/a.zip")

    def test_keeps_surrounding_words(self):
        assert text_of(CleanLinksMapper(), "before http://x.com after").split() == ["before", "after"]


class TestCleanIp:
    def test_removes_ipv4(self):
        assert "192.168.0.1" not in text_of(CleanIpMapper(), "server at 192.168.0.1 responded")

    def test_removes_ipv6(self):
        assert "2001" not in text_of(CleanIpMapper(), "addr 2001:0db8:85a3:0000:0000:8a2e:0370:7334 ok")

    def test_does_not_touch_version_numbers(self):
        assert text_of(CleanIpMapper(), "version 1.2.3 released") == "version 1.2.3 released"


class TestCleanHtml:
    def test_strips_tags_and_entities(self):
        cleaned = text_of(CleanHtmlMapper(), "<p>Tom &amp; Jerry</p>")
        assert cleaned == "Tom & Jerry"

    def test_drops_script_blocks(self):
        cleaned = text_of(CleanHtmlMapper(), "<script>var x=1;</script><p>content</p>")
        assert "var x" not in cleaned and "content" in cleaned

    def test_block_tags_become_newlines(self):
        cleaned = text_of(CleanHtmlMapper(), "<p>one</p><p>two</p>")
        assert "one" in cleaned.splitlines()[0] and "two" in cleaned.splitlines()[-1]


class TestCleanCopyright:
    def test_removes_block_comment_with_copyright(self):
        code = "/* Copyright (c) 2020 Corp. All rights reserved. */\nint main() {}"
        assert "Copyright" not in text_of(CleanCopyrightMapper(), code)

    def test_removes_leading_hash_license_lines(self):
        code = "# Copyright 2021 Example\n# Licensed under Apache-2.0\nx = 1\n"
        assert text_of(CleanCopyrightMapper(), code).startswith("x = 1")

    def test_keeps_code_without_copyright(self):
        code = "def f():\n    return 1\n"
        assert text_of(CleanCopyrightMapper(), code) == code

    def test_keeps_non_leading_comments(self):
        code = "x = 1\n# regular comment\ny = 2\n"
        assert text_of(CleanCopyrightMapper(), code) == code


class TestUnicodeAndWhitespace:
    def test_fix_unicode_repairs_mojibake(self):
        assert text_of(FixUnicodeMapper(), "donâ€™t") == "don't"

    def test_fix_unicode_invalid_form_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FixUnicodeMapper(normalization="NFX")

    def test_whitespace_normalization_replaces_nbsp(self):
        assert text_of(WhitespaceNormalizationMapper(), "a b") == "a b"

    def test_whitespace_normalization_keeps_newlines(self):
        assert "\n" in text_of(WhitespaceNormalizationMapper(), "a\nb")

    def test_punctuation_normalization(self):
        assert text_of(PunctuationNormalizationMapper(), "你好，world！") == "你好,world!"

    def test_remove_non_printable(self):
        assert text_of(RemoveNonPrintableMapper(), "ab\x00c\x07d") == "abcd"

    def test_remove_non_printable_keeps_newline_tab(self):
        assert text_of(RemoveNonPrintableMapper(), "a\n\tb") == "a\n\tb"
