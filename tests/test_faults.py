"""Unit tests for the fault-tolerance layer (repro.core.faults and friends).

The deterministic chaos scenarios over full pipelines live in
``tests/test_chaos.py``; this module covers the building blocks: the policy
dataclass, the tracker, the quarantine writer, the policy-aware op runner,
the worker-pool close path and the config/API/report surfaces.
"""

import gzip
import json
import logging

import pytest

from repro.core.config import RecipeConfig, load_config, validate_config
from repro.core.dataset import NestedDataset
from repro.core.errors import ConfigError, OpExecutionError
from repro.core.executor import Executor
from repro.core.faults import (
    BACKOFF_CAP_S,
    ErrorPolicy,
    FaultTracker,
    QuarantineWriter,
    describe_failure,
    retry_call,
    run_op_with_policy,
)
from repro.core.report import RunReport
from repro.ops import load_ops
from repro.parallel import WorkerPool
from repro.testing import ChaosFault, FaultPlan


def poison_dataset():
    return NestedDataset.from_list(
        [
            {"text": "a perfectly ordinary document"},
            {"text": "the POISON row that crashes the op"},
            {"text": "another fine document"},
        ]
    )


def poisoned_mapper(tmp_path=None):
    """A whitespace mapper that raises on rows containing POISON."""
    op = load_ops([{"whitespace_normalization_mapper": {}}])[0]
    FaultPlan().inject("whitespace_normalization_mapper", match="POISON").install([op])
    return op


class TestErrorPolicy:
    def test_defaults_are_the_historical_behaviour(self):
        policy = ErrorPolicy()
        assert policy.on_error == "raise"
        assert not policy.lenient
        assert policy.max_retries == 0
        assert policy.task_timeout_s is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            ErrorPolicy(on_error="explode")

    def test_backoff_is_capped_exponential(self):
        policy = ErrorPolicy(backoff_s=0.5)
        assert policy.backoff(0) == 0.5
        assert policy.backoff(1) == 1.0
        assert policy.backoff(10) == BACKOFF_CAP_S

    def test_zero_backoff_never_sleeps(self):
        assert ErrorPolicy(backoff_s=0).backoff(5) == 0.0

    def test_from_config_round_trip(self):
        config = RecipeConfig(
            on_error="quarantine", max_retries=3, backoff_s=0.1, task_timeout_s=5.0
        )
        policy = ErrorPolicy.from_config(config)
        assert policy.lenient
        assert policy.as_dict() == {
            "on_error": "quarantine",
            "max_retries": 3,
            "backoff_s": 0.1,
            "task_timeout_s": 5.0,
            "max_pool_rebuilds": 2,
        }


class TestFaultTracker:
    def test_counters_and_total(self):
        tracker = FaultTracker()
        assert tracker.total_faults == 0
        tracker.record_retry("some_op")
        tracker.record_rebuild("pool broke")
        tracker.record_op_error("some_op", ValueError("x"))
        tracker.record_dropped_rows("some_op", 2, quarantined=True)
        tracker.record_dropped_rows("some_op", 1, quarantined=False)
        tracker.record_dropped_shard("stage0:shard00001", 10)
        tracker.record_degradation("went serial")
        payload = tracker.as_dict()
        assert payload["retries"] == 1
        assert payload["pool_rebuilds"] == 1
        assert payload["quarantined_rows"] == 2
        assert payload["skipped_rows"] == 1
        assert payload["quarantined_shards"] == 1
        assert payload["degradations"] == 1
        assert payload["op_errors"] == {"some_op": 1}
        assert tracker.total_faults == 8

    def test_event_log_is_bounded(self):
        from repro.core.faults import MAX_FAULT_EVENTS

        tracker = FaultTracker()
        for _ in range(MAX_FAULT_EVENTS * 2):
            tracker.record_retry("op")
        assert len(tracker.events) == MAX_FAULT_EVENTS
        assert tracker.retries == MAX_FAULT_EVENTS * 2


class TestQuarantineWriter:
    def test_entries_carry_full_failure_context(self, tmp_path):
        writer = QuarantineWriter(tmp_path / "q")
        writer.write(
            {"text": "bad row"},
            "some_op",
            ValueError("boom"),
            shard_id="stage0:shard00002",
            row_index=7,
        )
        writer.close()
        assert [path.name for path in writer.paths] == ["quarantine-00001.jsonl.gz"]
        with gzip.open(writer.paths[0], "rt", encoding="utf-8") as handle:
            entry = json.loads(handle.readline())
        assert entry == {
            "op": "some_op",
            "error": "ValueError('boom')",
            "shard": "stage0:shard00002",
            "row_index": 7,
            "row": {"text": "bad row"},
        }

    def test_files_roll_at_the_row_budget(self, tmp_path):
        writer = QuarantineWriter(tmp_path / "q", rows_per_file=2)
        for index in range(5):
            writer.write({"text": str(index)}, "op", "err", row_index=index)
        writer.close()
        assert len(writer.paths) == 3
        assert writer.count == 5


class TestRunOpWithPolicy:
    def test_skip_drops_only_the_poison_row(self):
        op = poisoned_mapper()
        tracker = FaultTracker()
        out = run_op_with_policy(
            op, poison_dataset(), ErrorPolicy(on_error="skip"), tracker
        )
        assert [row["text"] for row in out] == [
            "a perfectly ordinary document",
            "another fine document",
        ]
        assert tracker.skipped_rows == 1
        assert tracker.quarantined_rows == 0
        assert op.name in tracker.op_errors

    def test_quarantine_writes_the_poison_row(self, tmp_path):
        op = poisoned_mapper()
        tracker = FaultTracker()
        quarantine = QuarantineWriter(tmp_path / "q")
        out = run_op_with_policy(
            op,
            poison_dataset(),
            ErrorPolicy(on_error="quarantine"),
            tracker,
            quarantine,
        )
        quarantine.close()
        assert len(out) == 2
        assert tracker.quarantined_rows == 1
        with gzip.open(quarantine.paths[0], "rt", encoding="utf-8") as handle:
            entry = json.loads(handle.readline())
        assert "POISON" in entry["row"]["text"]
        assert entry["op"] == "whitespace_normalization_mapper"

    def test_raise_aborts_with_op_and_row_context(self):
        op = poisoned_mapper()
        with pytest.raises(OpExecutionError) as excinfo:
            run_op_with_policy(op, poison_dataset(), ErrorPolicy(), FaultTracker())
        message = str(excinfo.value)
        assert "whitespace_normalization_mapper" in message
        assert "row index: 1" in message
        assert "--on-error raise" in message
        assert excinfo.value.row_index == 1

    def test_transient_failure_succeeds_within_retries(self, tmp_path):
        op = load_ops([{"whitespace_normalization_mapper": {}}])[0]
        FaultPlan(state_dir=tmp_path).inject(
            "whitespace_normalization_mapper", times=2
        ).install([op])
        tracker = FaultTracker()
        out = run_op_with_policy(
            op,
            poison_dataset(),
            ErrorPolicy(max_retries=3, backoff_s=0),
            tracker,
        )
        assert len(out) == 3  # nothing dropped: the op healed on retry
        assert tracker.retries == 2

    def test_dataset_level_op_degrades_to_skip(self):
        op = load_ops([{"document_deduplicator": {}}])[0]

        def bomb(dataset, **kwargs):
            raise RuntimeError("global stage broke")

        op.run = bomb
        tracker = FaultTracker()
        dataset = poison_dataset()
        out = run_op_with_policy(
            op, dataset, ErrorPolicy(on_error="skip"), tracker
        )
        # conservative outcome: every row kept, the skip recorded
        assert out.to_list() == dataset.to_list()
        assert out.fingerprint != dataset.fingerprint
        assert tracker.degradations == 1

    def test_fingerprint_salted_by_dropped_rows(self):
        clean = load_ops([{"whitespace_normalization_mapper": {}}])[0]
        clean_out = clean.run(poison_dataset().select([0, 2]))
        faulty = poisoned_mapper()
        faulty_out = run_op_with_policy(
            faulty, poison_dataset(), ErrorPolicy(on_error="skip"), FaultTracker()
        )
        assert clean_out.to_list() == faulty_out.to_list()
        assert clean_out.fingerprint != faulty_out.fingerprint


class TestRetryCall:
    def test_retries_then_returns(self):
        calls = {"count": 0}

        def flaky():
            calls["count"] += 1
            if calls["count"] < 3:
                raise ValueError("transient")
            return "ok"

        tracker = FaultTracker()
        result = retry_call(
            flaky, ErrorPolicy(max_retries=5, backoff_s=0), tracker, "flaky_stage"
        )
        assert result == "ok"
        assert tracker.retries == 2

    def test_final_error_reraised_unwrapped(self):
        def always():
            raise ValueError("persistent")

        with pytest.raises(ValueError, match="persistent"):
            retry_call(
                always, ErrorPolicy(max_retries=1, backoff_s=0), FaultTracker(), "x"
            )


class TestDescribeFailure:
    def test_message_names_op_shard_and_row(self):
        message = describe_failure(
            "words_num_filter", ValueError("nan"), "stage1:shard00004", 12
        )
        assert "words_num_filter" in message
        assert "stage1:shard00004" in message
        assert "row index: 12" in message
        assert "--on-error raise" in message


class TestWorkerPoolClose:
    def test_drain_failure_is_logged_and_remembered(self, caplog):
        pool = WorkerPool(2, process_list=[{"whitespace_normalization_mapper": {}}])

        def broken_close():
            raise RuntimeError("drain broke")

        pool._pool.close = broken_close
        with caplog.at_level(logging.WARNING, logger="repro.parallel.pool"):
            pool.close()
        assert isinstance(pool.close_error, RuntimeError)
        assert "drain broke" in str(pool.close_error)
        assert any("drain failed" in record.message for record in caplog.records)
        assert not pool.alive

    def test_clean_close_leaves_no_error(self):
        pool = WorkerPool(2, process_list=[{"whitespace_normalization_mapper": {}}])
        pool.close()
        assert pool.close_error is None


class TestCorruptCheckpointState:
    def test_run_reexecutes_instead_of_crashing(self, tmp_path):
        config = {
            "process": [{"whitespace_normalization_mapper": {}}],
            "work_dir": str(tmp_path),
            "use_checkpoint": True,
        }
        dataset = poison_dataset()
        Executor(config).run(dataset)
        state_path = tmp_path / "checkpoint" / "checkpoint_state.json"
        assert state_path.exists()
        state_path.write_text("{ truncated garbage", encoding="utf-8")
        out = Executor(config).run(dataset)
        assert len(out) == 3

    def test_read_state_returns_none_on_garbage(self, tmp_path):
        from repro.core.checkpoint import CheckpointManager

        manager = CheckpointManager(tmp_path, enabled=True)
        (tmp_path / CheckpointManager.STATE_FILE).write_text("not json", encoding="utf-8")
        assert manager.read_state() is None


class TestConfigValidation:
    def test_bad_on_error_rejected(self):
        with pytest.raises(ConfigError, match="on_error"):
            validate_config(RecipeConfig(on_error="explode"))

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError, match="max_retries"):
            validate_config(RecipeConfig(max_retries=-1))

    def test_zero_timeout_rejected(self):
        with pytest.raises(ConfigError, match="task_timeout_s"):
            validate_config(RecipeConfig(task_timeout_s=0))

    def test_fault_keys_round_trip_through_load_config(self):
        config = load_config(
            {
                "process": [],
                "on_error": "quarantine",
                "max_retries": 2,
                "task_timeout_s": 1.5,
            }
        )
        assert config.on_error == "quarantine"
        assert config.as_dict()["task_timeout_s"] == 1.5


class TestPipelineOnError:
    def test_on_error_sets_recipe_keys(self):
        from repro.api import Pipeline

        recipe = (
            Pipeline.new()
            .on_error("quarantine", max_retries=2, task_timeout_s=30, backoff_s=0.2)
            .to_recipe()
        )
        assert recipe["on_error"] == "quarantine"
        assert recipe["max_retries"] == 2
        assert recipe["task_timeout_s"] == 30
        assert recipe["backoff_s"] == 0.2

    def test_bad_policy_caught_at_compile(self):
        from repro.api import Pipeline

        with pytest.raises(ConfigError, match="on_error"):
            Pipeline.new().on_error("explode").to_config()


class TestReportFaultsSection:
    def test_render_shows_faults_only_when_something_happened(self):
        quiet = RunReport(faults={"retries": 0, "op_errors": {}, "policy": {}})
        assert "faults" not in quiet.render()
        noisy = RunReport(
            faults={
                "retries": 3,
                "pool_rebuilds": 1,
                "degradations": 0,
                "quarantined_rows": 2,
                "skipped_rows": 0,
                "quarantined_shards": 0,
                "op_errors": {"words_num_filter": 3},
                "policy": {"on_error": "quarantine"},
                "quarantine_paths": ["/tmp/q/quarantine-00001.jsonl.gz"],
            }
        )
        rendered = noisy.render()
        assert "faults (on_error=quarantine)" in rendered
        assert "retries=3" in rendered
        assert "words_num_filter=3" in rendered
        assert "quarantine-00001.jsonl.gz" in rendered

    def test_faults_survive_save_load_round_trip(self, tmp_path):
        report = RunReport(faults={"retries": 1, "op_errors": {}})
        report.save(tmp_path / "report.json")
        loaded = RunReport.load(tmp_path / "report.json")
        assert loaded["faults"]["retries"] == 1


class TestChaosHarnessUnits:
    def test_raise_fault_is_deterministic_and_row_targeted(self):
        op = poisoned_mapper()
        with pytest.raises(ChaosFault):
            op.process({"text": "has POISON inside"})
        clean = op.process({"text": "all good"})
        assert clean["text"] == "all good"

    def test_times_bounded_fault_burns_out(self, tmp_path):
        plan = FaultPlan(state_dir=tmp_path).inject(
            "whitespace_normalization_mapper", times=1
        )
        op = load_ops([{"whitespace_normalization_mapper": {}}])[0]
        plan.install([op])
        with pytest.raises(ChaosFault):
            op.process({"text": "x"})
        assert plan.fired() == 1
        assert op.process({"text": "x"})["text"] == "x"  # fuse blown: clean now
        plan.reset()
        with pytest.raises(ChaosFault):
            op.process({"text": "x"})

    def test_times_bounded_fault_requires_state_dir(self):
        with pytest.raises(ValueError, match="state_dir"):
            FaultPlan().inject("whitespace_normalization_mapper", times=1)

    def test_install_recurses_into_fused_filters(self):
        from repro.ops import build_ops

        ops = build_ops(
            [
                {"words_num_filter": {"min_num": 1}},
                {"word_repetition_filter": {}},
            ],
            op_fusion=True,
        )
        assert any(hasattr(op, "fused_filters") for op in ops)
        FaultPlan().inject("words_num_filter", match="POISON").install(ops)
        fused = next(op for op in ops if hasattr(op, "fused_filters"))
        with pytest.raises(ChaosFault):
            fused.compute_stats({"text": "POISON here"})
