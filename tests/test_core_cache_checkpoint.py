"""Tests for the cache manager (compression codecs) and the checkpoint manager."""

import pytest

from repro.core.cache import (
    CacheManager,
    available_codecs,
    estimate_cache_space,
    estimate_checkpoint_space,
)
from repro.core.checkpoint import CheckpointManager
from repro.core.dataset import NestedDataset
from repro.core.errors import CheckpointError, ReproError


def dataset():
    return NestedDataset.from_list([{"text": "hello world " * 20, "meta": {"n": 1}}] * 10)


class TestCacheManager:
    def test_save_and_load_roundtrip(self, tmp_path):
        cache = CacheManager(tmp_path)
        key = CacheManager.make_key("fp", "op", {"a": 1})
        cache.save(key, dataset())
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.to_list() == dataset().to_list()

    def test_miss_returns_none_and_counts(self, tmp_path):
        cache = CacheManager(tmp_path)
        assert cache.load("missing") is None
        assert cache.misses == 1

    def test_hit_counts(self, tmp_path):
        cache = CacheManager(tmp_path)
        cache.save("k", dataset())
        cache.load("k")
        assert cache.hits == 1

    def test_disabled_cache_is_noop(self, tmp_path):
        cache = CacheManager(tmp_path, enabled=False)
        assert cache.save("k", dataset()) is None
        assert cache.load("k") is None
        assert not cache.contains("k")

    @pytest.mark.parametrize("codec", ["zlib", "gzip", "lzma", "bz2"])
    def test_compression_roundtrip(self, tmp_path, codec):
        cache = CacheManager(tmp_path, compression=codec)
        cache.save("k", dataset())
        assert cache.load("k").to_list() == dataset().to_list()

    def test_compression_reduces_size(self, tmp_path):
        plain = CacheManager(tmp_path / "plain", compression="none")
        compressed = CacheManager(tmp_path / "zlib", compression="zlib")
        plain.save("k", dataset())
        compressed.save("k", dataset())
        assert compressed.total_bytes() < plain.total_bytes()

    def test_unknown_codec_raises(self, tmp_path):
        with pytest.raises(ReproError):
            CacheManager(tmp_path, compression="zstd-but-wrong")

    def test_available_codecs_contains_none(self):
        assert "none" in available_codecs()

    def test_clear_removes_entries(self, tmp_path):
        cache = CacheManager(tmp_path)
        cache.save("a", dataset())
        cache.save("b", dataset())
        assert cache.clear() == 2
        assert cache.total_bytes() == 0

    def test_make_key_depends_on_params(self):
        assert CacheManager.make_key("fp", "op", {"a": 1}) != CacheManager.make_key(
            "fp", "op", {"a": 2}
        )


class TestSpaceEstimates:
    def test_cache_mode_formula(self):
        # (1 + M + F + I(F>0) + D) * S  — Appendix A.2
        assert estimate_cache_space(100, num_mappers=2, num_filters=3, num_dedups=1) == 800

    def test_cache_mode_without_filters(self):
        assert estimate_cache_space(100, num_mappers=2, num_filters=0, num_dedups=0) == 300

    def test_checkpoint_mode_is_three_copies(self):
        assert estimate_checkpoint_space(100) == 300

    def test_checkpoint_mode_below_cache_mode_for_long_pipelines(self):
        cache = estimate_cache_space(100, num_mappers=5, num_filters=8, num_dedups=1)
        assert estimate_checkpoint_space(100) < cache


class TestCheckpointManager:
    def test_save_and_load(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(dataset(), op_index=2, op_names=["a", "b", "c"])
        assert manager.exists()
        restored, op_index, names = manager.load()
        assert op_index == 2
        assert names == ["a", "b", "c"]
        assert len(restored) == 10

    def test_load_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path).load()

    def test_disabled_manager_never_exists(self, tmp_path):
        manager = CheckpointManager(tmp_path, enabled=False)
        manager.save(dataset(), 1, ["a"])
        assert not manager.exists()

    def test_clear(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(dataset(), 1, ["a"])
        manager.clear()
        assert not manager.exists()
