"""Tests for the typed operator parameter schemas (:mod:`repro.core.schema`).

Two contracts live here: the schema machinery itself (derivation from
constructor signatures, ``PARAM_SPECS`` overrides, per-value checks), and the
tier-1 drift guard — every built-in recipe must stay valid against the
schemas, so an op signature or recipe change that disagrees with the declared
bounds fails the build.
"""

import pytest

from repro.api import validate_recipe
from repro.api.validate import render_issues
from repro.core.registry import OPERATORS
from repro.core.schema import (
    COMMON_PARAMS,
    ParamSpec,
    SchemaIssue,
    schema_for,
    validate_op_params,
    validate_process,
)
from repro.recipes import BUILT_IN_RECIPES


class TestParamSpec:
    def test_type_check_accepts_and_rejects(self):
        spec = ParamSpec(name="n", types=("int",), default=1)
        assert spec.check(5) is None
        assert "wrong type" in spec.check("five")
        # bool is an int subclass but must not satisfy an int parameter
        assert "wrong type" in spec.check(True)

    def test_float_accepts_int(self):
        spec = ParamSpec(name="ratio", types=("float",), default=0.5)
        assert spec.check(1) is None

    def test_bounds(self):
        spec = ParamSpec(name="ratio", types=("float",), default=0.5, min_value=0.0, max_value=1.0)
        assert spec.check(0.0) is None and spec.check(1.0) is None
        assert "below the minimum" in spec.check(-0.1)
        assert "above the maximum" in spec.check(1.1)
        assert "[0.0, 1.0]" in spec.check(2.0)

    def test_choices_including_list_values(self):
        spec = ParamSpec(name="lang", types=("str", "list"), default="en", choices=("en", "zh"))
        assert spec.check("en") is None
        assert spec.check(["en", "zh"]) is None
        assert "not an allowed value" in spec.check("fr")
        assert "not an allowed value" in spec.check(["en", "fr"])

    def test_nullable(self):
        spec = ParamSpec(name="k", types=("int",), default=None, nullable=True)
        assert spec.check(None) is None
        strict = ParamSpec(name="k", types=("int",), default=3)
        assert "must not be null" in strict.check(None)

    def test_required_and_labels(self):
        import sys

        required = ParamSpec(name="k", types=("int",))
        assert required.required and required.default_label() == "required"
        unbounded = ParamSpec(name="k", types=("int",), default=sys.maxsize)
        assert unbounded.default_label() == "unbounded"
        assert ParamSpec(name="k", types=("int",), default=3).default_label() == "3"
        assert ParamSpec(name="k", types=("int",), nullable=True).type_label == "int | None"


class TestSchemaDerivation:
    def test_signature_types_and_defaults(self):
        schema = schema_for(OPERATORS.get("text_length_filter"))
        by_name = {spec.name: spec for spec in schema.params}
        assert by_name["min_len"].types == ("int",)
        assert by_name["min_len"].default == 10
        assert by_name["min_len"].min_value == 0  # from PARAM_SPECS

    def test_common_params_separated(self):
        schema = schema_for(OPERATORS.get("text_length_filter"))
        assert {spec.name for spec in schema.common} == set(COMMON_PARAMS)
        assert not any(spec.name in COMMON_PARAMS for spec in schema.params)

    def test_category_and_summary(self):
        schema = schema_for(OPERATORS.get("clean_html_mapper"))
        assert schema.category == "mapper"
        assert schema.summary

    def test_union_annotation(self):
        schema = schema_for(OPERATORS.get("language_id_score_filter"))
        lang = schema.param("lang")
        assert set(lang.types) >= {"str", "list"}
        assert lang.choices == ("en", "zh", "other", "")

    def test_schema_classmethod_and_cache(self):
        cls = OPERATORS.get("words_num_filter")
        assert cls.schema() is schema_for(cls)

    def test_stray_param_specs_key_is_an_error(self):
        from repro.core.base_op import Filter
        from repro.core.errors import SchemaError

        class TypoOp(Filter):
            """Filter with a typo'd PARAM_SPECS key."""

            PARAM_SPECS = {"max_lenn": {"min_value": 0}}

            def __init__(self, max_len: int = 10, **kwargs):
                super().__init__(**kwargs)
                self.max_len = max_len

        with pytest.raises(SchemaError, match="max_lenn"):
            schema_for(TypoOp)

    def test_every_registered_op_has_a_schema(self):
        for name in OPERATORS.list():
            schema = schema_for(OPERATORS.get(name), name=name)
            assert schema.name == name
            assert schema.category in ("mapper", "filter", "deduplicator", "selector")


class TestValidateOpParams:
    def test_valid_params(self):
        assert validate_op_params("text_length_filter", {"min_len": 50}) == []

    def test_out_of_bounds_reports_allowed_range(self):
        issues = validate_op_params("special_characters_filter", {"max_ratio": 1.5})
        assert len(issues) == 1
        assert "special_characters_filter" in str(issues[0])
        assert "[0.0, 1.0]" in str(issues[0])

    def test_unknown_param_suggests(self):
        issues = validate_op_params("text_length_filter", {"min_length": 5})
        assert len(issues) == 1
        assert "did you mean: min_len" in issues[0].message

    def test_unknown_op_is_one_issue_with_suggestions(self):
        issues = validate_op_params("text_lenght_filter", {})
        assert len(issues) == 1
        assert "did you mean" in issues[0].message

    def test_every_issue_reported_at_once(self):
        issues = validate_op_params(
            "word_repetition_filter",
            {"rep_len": 0, "max_ratio": 2.0, "bogus": 1},
        )
        assert {issue.param for issue in issues} == {"rep_len", "max_ratio", "bogus"}

    def test_common_params_accepted(self):
        assert validate_op_params("text_length_filter", {"text_key": "body", "batch_size": 32}) == []

    def test_bad_common_param_type_rejected(self):
        issues = validate_op_params("text_length_filter", {"batch_size": "many"})
        assert len(issues) == 1 and issues[0].param == "batch_size"


class TestValidateProcessAndRecipes:
    def test_validate_process_flags_each_entry(self):
        issues = validate_process(
            [
                {"text_length_filter": {"min_len": -1}},
                "clean_html_mapper",
                {"nope_mapper": {}},
            ]
        )
        assert {issue.op for issue in issues} == {"text_length_filter", "nope_mapper"}

    def test_validate_recipe_reports_unknown_keys(self):
        issues = validate_recipe({"npp": 3, "process": []})
        assert any("did you mean: np" in issue.message for issue in issues)

    def test_validate_recipe_checks_option_rules(self):
        issues = validate_recipe({"np": 0, "process": []})
        assert any("np" in str(issue) for issue in issues)

    def test_render_issues(self):
        assert "valid" in render_issues([])
        rendered = render_issues([SchemaIssue("op", "p", "broken")])
        assert "1 problem(s)" in rendered and "op.p: broken" in rendered

    @pytest.mark.parametrize("name", sorted(BUILT_IN_RECIPES))
    def test_every_builtin_recipe_is_schema_valid(self, name):
        """Tier-1 drift guard: recipes and op schemas must stay in agreement."""
        assert validate_recipe(BUILT_IN_RECIPES[name]) == []
