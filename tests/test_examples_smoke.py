"""Smoke tests ensuring every example script runs end to end (scaled down via imports).

The examples are the user-facing entry points of the repository; these tests
import each example module and call its ``main()`` so a broken public API
surfaces immediately.  Output sizes inside the examples are small enough that
the whole module finishes in seconds.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "quality_classifier_demo",
    "distributed_processing",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_at_least_three_scripts(self):
        scripts = list(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_example_main_runs(self, name, capsys):
        module = _load_example(name)
        module.main()
        output = capsys.readouterr().out
        assert output.strip(), f"example {name} produced no output"

    def test_every_example_defines_main(self):
        for path in EXAMPLES_DIR.glob("*.py"):
            source = path.read_text(encoding="utf-8")
            assert "def main(" in source, f"{path.name} has no main()"
            assert '__name__ == "__main__"' in source, f"{path.name} has no CLI guard"
