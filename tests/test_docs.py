"""Tests for the generated docs subsystem and API documentation hygiene.

Two contracts are enforced here:

* the committed ``docs/ops_catalog.md`` must match a fresh render of the
  operator registry (``make docs`` regenerates it) — documentation rot fails
  the build;
* every registered operator class, and the public core API surface, carries a
  non-empty docstring.
"""

import inspect
from pathlib import Path

import pytest

from repro.core.registry import OPERATORS
from repro.tools.docgen import (
    catalog_in_sync,
    op_catalog_entries,
    op_doc_summary,
    op_parameters,
    render_ops_catalog,
    write_ops_catalog,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"


class TestOpsCatalog:
    def test_committed_catalog_in_sync_with_registry(self):
        """`make docs` must be a no-op: a stale catalog fails the build."""
        catalog_path = DOCS_DIR / "ops_catalog.md"
        assert catalog_path.exists(), "docs/ops_catalog.md missing; run `make docs`"
        assert catalog_in_sync(catalog_path), (
            "docs/ops_catalog.md is out of sync with the operator registry; "
            "regenerate it with `make docs`"
        )

    def test_every_registered_op_in_catalog(self):
        rendered = render_ops_catalog()
        for name in OPERATORS.list():
            assert f"### `{name}`" in rendered

    def test_entries_carry_category_and_summary(self):
        entries = op_catalog_entries()
        assert len(entries) == len(OPERATORS)
        for entry in entries:
            assert entry["category"] in ("mapper", "filter", "deduplicator", "selector")
            assert entry["summary"], f"{entry['name']} has no docstring summary"

    def test_op_parameters_skip_common_kwargs(self):
        names = [spec.name for spec in op_parameters(OPERATORS.get("text_length_filter"))]
        assert "min_len" in names and "max_len" in names
        assert "text_key" not in names and "batch_size" not in names

    def test_parameter_tables_are_typed(self):
        """The catalog renders each parameter's type, bounds and doc from its schema."""
        rendered = render_ops_catalog()
        assert "| parameter | type | default | constraints | description |" in rendered
        # a declared bound and doc from TextLengthFilter.PARAM_SPECS shows up
        assert "| `min_len` | `int` | `10` | `>= 0` | minimum text length in characters |" in rendered
        # choices render for schema-declared enumerations
        assert "one of " in rendered

    def test_render_is_deterministic(self):
        assert render_ops_catalog() == render_ops_catalog()

    def test_write_reports_change_state(self, tmp_path):
        path = tmp_path / "catalog.md"
        assert write_ops_catalog(path) is True
        assert write_ops_catalog(path) is False  # already up to date
        assert catalog_in_sync(path)

    def test_docs_ops_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "catalog.md"
        assert main(["docs-ops", "--output", str(path)]) == 0
        assert path.exists()
        assert main(["docs-ops", "--output", str(path), "--check"]) == 0
        path.write_text("stale", encoding="utf-8")
        assert main(["docs-ops", "--output", str(path), "--check"]) == 1
        assert "OUT OF SYNC" in capsys.readouterr().out


class TestDocsTree:
    @pytest.mark.parametrize(
        "name",
        [
            "architecture.md",
            "dataflow.md",
            "linting.md",
            "observability.md",
            "ops_catalog.md",
            "robustness.md",
        ],
    )
    def test_docs_files_exist_and_are_substantial(self, name):
        path = DOCS_DIR / name
        assert path.exists(), f"docs/{name} missing"
        assert len(path.read_text(encoding="utf-8")) > 500

    def test_readme_links_docs_and_caveat_removed(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/architecture.md" in readme
        assert "docs/observability.md" in readme
        assert "docs/ops_catalog.md" in readme
        assert "docs/robustness.md" in readme
        assert "docs/dataflow.md" in readme
        # PR 3's caveat — streaming bypassing cache and tracer — is gone
        assert "bypassed in streaming mode" not in readme


class TestDocstringCoverage:
    def test_every_registered_op_has_docstring(self):
        missing = [
            name
            for name in OPERATORS.list()
            if not (OPERATORS.get(name).__doc__ or "").strip()
        ]
        assert not missing, f"operators without docstrings: {missing}"

    def test_public_core_api_documented(self):
        """Every public class and method of the core surface has a docstring."""
        from repro.analysis import analyzer
        from repro.api import pipeline as api_pipeline
        from repro.api import validate as api_validate
        from repro.core import (
            base_op,
            cache,
            checkpoint,
            dataset,
            executor,
            exporter,
            monitor,
            planner,
            report,
            schema,
            stream,
            tracer,
        )
        from repro.formats import (
            csv_formatter,
            jsonl_formatter,
            load,
            mixture_formatter,
            sharded,
            text_formatter,
        )

        modules = (
            analyzer, api_pipeline, api_validate, base_op, cache, checkpoint,
            dataset, executor, exporter, monitor, planner, report, schema,
            stream, tracer, csv_formatter, jsonl_formatter, load,
            mixture_formatter, sharded, text_formatter,
        )
        undocumented = []
        for module in modules:
            assert (module.__doc__ or "").strip(), f"{module.__name__} has no module docstring"
            for name, obj in vars(module).items():
                if not inspect.isclass(obj) or obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_") or not callable(method):
                        continue
                    if isinstance(method, (staticmethod, classmethod)):
                        method = method.__func__
                    if not (getattr(method, "__doc__", "") or "").strip():
                        undocumented.append(f"{module.__name__}.{name}.{method_name}")
        assert not undocumented, f"undocumented public API: {undocumented}"
