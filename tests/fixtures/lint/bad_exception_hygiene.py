"""Bad: the data path swallows failures the error policy should see."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_exception_hygiene")
class BadExceptionHygieneMapper(Mapper):
    """Hides poison rows from retry/quarantine instead of letting them fail."""

    def process(self, sample: dict) -> dict:
        try:
            sample = self.set_text(sample, self.get_text(sample).upper())
        except:  # line 14: exception-hygiene (bare except)
            pass
        return sample

    def process_batched(self, samples: dict) -> dict:
        for index, text in enumerate(samples[self.text_key]):
            try:
                samples[self.text_key][index] = text.upper()
            except Exception:  # line 21: exception-hygiene (swallowed)
                pass
        return samples
