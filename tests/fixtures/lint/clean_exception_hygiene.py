"""Clean: exceptions escape to the error policy, or are handled specifically."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_exception_hygiene")
class CleanExceptionHygieneMapper(Mapper):
    """Lets unexpected failures propagate; handles one expected case."""

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        try:
            number = int(text)
        except ValueError:  # a specific, expected case with a real fallback
            number = 0
        return self.set_text(sample, str(number))
