"""Clean: the batched override keeps per-row parity with process()."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_batched_parity")
class CleanBatchedParityMapper(Mapper):
    """Lowercases texts; batched path mirrors the per-row path."""

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, self.get_text(sample).lower())

    def process_batched(self, samples: dict) -> dict:
        key = self.text_key
        samples[key] = [text.lower() for text in samples[key]]
        return samples
