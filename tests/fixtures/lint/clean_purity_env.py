"""Clean: the threshold is a constructor parameter, so it reaches config()."""

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_purity_env")
class CleanPurityEnvFilter(Filter):
    """Keeps samples at least ``min_len`` characters long."""

    PARAM_SPECS = {
        "min_len": {"min_value": 0, "doc": "minimum text length (chars)"},
    }

    def __init__(self, min_len: int = 10, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.min_len = min_len

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        sample.setdefault("__stats__", {})["text_len"] = len(self.get_text(sample))
        return sample

    def process(self, sample: dict) -> bool:
        return sample["__stats__"]["text_len"] >= self.min_len
