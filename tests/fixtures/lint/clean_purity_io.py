"""Clean: lookup tables arrive through the constructor, not through I/O."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_purity_io")
class CleanPurityIoMapper(Mapper):
    """Replaces whole texts via a constructor-provided table."""

    PARAM_SPECS = {
        "table": {"doc": "mapping from source text to replacement text"},
    }

    def __init__(self, table: dict | None = None, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.table = dict(table or {})

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        return self.set_text(sample, self.table.get(text, text))
