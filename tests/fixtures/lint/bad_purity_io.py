"""Bad: touches the filesystem and the network inside the data path."""

import json
import urllib.request

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_purity_io")
class BadPurityIoMapper(Mapper):
    """Looks up replacements from a file and a web service per sample."""

    def process(self, sample: dict) -> dict:
        with open("/tmp/replacements.json") as handle:  # line 15: file I/O
            table = json.load(handle)
        remote = urllib.request.urlopen("http://example.com/t")  # line 17: network
        table.update(json.loads(remote.read()))
        return self.set_text(sample, table.get(self.get_text(sample), ""))
