"""Bad: mutates module, instance, and class state inside the data path."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS

_SEEN = 0


@OPERATORS.register_module("bad_purity_global")
class BadPurityGlobalMapper(Mapper):
    """Numbers samples with a running counter — order-dependent output."""

    total = 0

    def process(self, sample: dict) -> dict:
        global _SEEN  # line 16: global statement
        _SEEN += 1
        self.last_text = self.get_text(sample)  # line 18: instance mutation
        BadPurityGlobalMapper.total += 1  # line 19: class-attribute mutation
        sample["index"] = _SEEN
        return sample
