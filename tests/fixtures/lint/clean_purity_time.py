"""Clean: the data path is time-independent; timing lives in the profiler."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_purity_time")
class CleanPurityTimeMapper(Mapper):
    """Uppercases the text; output depends only on the input."""

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, self.get_text(sample).upper())
