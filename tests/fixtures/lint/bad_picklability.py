"""Bad: stores unpicklable state, so spawn-mode workers cannot receive it."""

import threading

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_picklability")
class BadPicklabilityMapper(Mapper):
    """Normalizes text behind a lock with a lambda normalizer."""

    def __init__(self, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self._lock = threading.Lock()  # line 15: lock is unpicklable
        self._normalize = lambda text: " ".join(text.split())  # line 16: lambda
        self._log = open("/tmp/bad_picklability.log", "w")  # line 17: open handle

    def process(self, sample: dict) -> dict:
        with self._lock:
            return self.set_text(sample, self._normalize(self.get_text(sample)))
