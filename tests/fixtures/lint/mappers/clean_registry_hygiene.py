"""Clean: one documented op, registered under the module's own name."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_registry_hygiene")
class CleanRegistryHygieneMapper(Mapper):
    """Strips leading and trailing whitespace from the text."""

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, self.get_text(sample).strip())
