from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("some_other_name_mapper")
class FirstMapper(Mapper):
    def process(self, sample: dict) -> dict:
        return sample


@OPERATORS.register_module("second_mapper")
class SecondMapper(Mapper):
    """Documented, but a second op in the same module."""

    def process(self, sample: dict) -> dict:
        return sample
