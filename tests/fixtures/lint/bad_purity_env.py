"""Bad: behaviour controlled by environment variables, invisible to config()."""

import os

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_purity_env")
class BadPurityEnvFilter(Filter):
    """Keeps samples longer than an environment-provided threshold."""

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        sample.setdefault("__stats__", {})["text_len"] = len(self.get_text(sample))
        sample["__stats__"]["debug"] = os.environ.get("REPRO_DEBUG", "")  # line 15
        return sample

    def process(self, sample: dict) -> bool:
        return sample["__stats__"]["text_len"] >= int(os.getenv("MIN_LEN", "10"))  # line 19
