"""Bad: draws from the global (unseeded) RNG inside the data path."""

import random

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_purity_random")
class BadPurityRandomMapper(Mapper):
    """Randomly drops words without any seed in config()."""

    def process(self, sample: dict) -> dict:
        words = [w for w in self.get_text(sample).split() if random.random() < 0.5]  # line 14
        rng = random.Random()  # line 15: unseeded instance
        rng.shuffle(words)
        return self.set_text(sample, " ".join(words))
