"""Clean: randomness flows from a constructor seed stored in config()."""

import random

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_purity_random")
class CleanPurityRandomMapper(Mapper):
    """Deterministically shuffles words given (seed, text)."""

    PARAM_SPECS = {
        "seed": {"doc": "shuffle RNG seed"},
    }

    def __init__(self, seed: int = 0, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.seed = seed

    def process(self, sample: dict) -> dict:
        words = self.get_text(sample).split()
        random.Random(f"{self.seed}:{len(words)}").shuffle(words)
        return self.set_text(sample, " ".join(words))
