"""Bad: one param never reaches config(); one derived attr leaks into it."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_config_completeness")
class BadConfigCompletenessMapper(Mapper):
    """Keeps only the first words of each text."""

    PARAM_SPECS = {
        "min_words": {"min_value": 0, "doc": "lower bound on kept words"},
        "max_words": {"min_value": 0, "doc": "upper bound on kept words"},
    }

    def __init__(self, min_words: int = 1, max_words: int = 100, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.min_words = min_words
        self.window = max_words - min_words  # line 19: derived attr leaks, max_words dropped

    def process(self, sample: dict) -> dict:
        words = self.get_text(sample).split()
        return self.set_text(sample, " ".join(words[: self.min_words + self.window]))
