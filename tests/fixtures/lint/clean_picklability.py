"""Clean: only plain data on self; helpers are module-level functions."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


def _normalize(text: str) -> str:
    return " ".join(text.split())


@OPERATORS.register_module("clean_picklability")
class CleanPicklabilityMapper(Mapper):
    """Collapses runs of whitespace into single spaces."""

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, _normalize(self.get_text(sample)))
