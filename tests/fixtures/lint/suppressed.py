"""Violations silenced with ``# repro: lint-ignore`` comments."""

import random
import time

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("suppressed")
class SuppressedMapper(Mapper):
    """Deliberately impure, with every violation suppressed in-line."""

    def process(self, sample: dict) -> dict:
        sample["at"] = time.time()  # repro: lint-ignore[purity-time]
        sample["jitter"] = random.random()  # repro: lint-ignore
        return sample
