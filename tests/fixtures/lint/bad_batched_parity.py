"""Bad: batched override without the per-row counterpart the pool expects."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_batched_parity")
class BadBatchedParityMapper(Mapper):
    """Lowercases texts, but only in batched form."""

    def process_batched(self, samples: dict) -> dict:
        key = self.text_key
        samples[key] = [text.lower() for text in samples[key]]
        return samples
