"""Clean: all state is fixed at construction; process() only reads it."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_purity_global")
class CleanPurityGlobalMapper(Mapper):
    """Prefixes each text with a constructor-supplied tag."""

    PARAM_SPECS = {
        "tag": {"doc": "string prepended to every text"},
    }

    def __init__(self, tag: str = ">>", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.tag = tag

    def process(self, sample: dict) -> dict:
        return self.set_text(sample, f"{self.tag} {self.get_text(sample)}")
