"""Bad: reads the wall clock inside the data path."""

import time

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_purity_time")
class BadPurityTimeMapper(Mapper):
    """Stamps each sample with the time it was processed."""

    def process(self, sample: dict) -> dict:
        sample["processed_at"] = time.time()  # line 14: purity-time
        return sample
