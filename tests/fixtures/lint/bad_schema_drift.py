"""Bad: PARAM_SPECS drifted from the constructor signature."""

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS


@OPERATORS.register_module("bad_schema_drift")
class BadSchemaDriftFilter(Filter):
    """Keeps samples whose score clears a threshold."""

    PARAM_SPECS = {
        "threshold": {"minimum": 0.0, "doc": "score cutoff"},
        "old_knob": {"doc": "removed in a refactor but still documented"},
        "mode": {"choices": ["strict", "loose"], "doc": "comparison mode"},
    }

    def __init__(self, threshold: float = -0.5, mode: str = "fuzzy", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.threshold = threshold
        self.mode = mode

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        sample.setdefault("__stats__", {})["score"] = float(len(self.get_text(sample)))
        return sample

    def process(self, sample: dict) -> bool:
        return sample["__stats__"]["score"] >= self.threshold
