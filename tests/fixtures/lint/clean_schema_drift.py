"""Clean: PARAM_SPECS matches the constructor and its defaults."""

from repro.core.base_op import Filter
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_schema_drift")
class CleanSchemaDriftFilter(Filter):
    """Keeps samples whose score clears a threshold."""

    PARAM_SPECS = {
        "threshold": {"min_value": 0.0, "doc": "score cutoff"},
        "mode": {"choices": ["strict", "loose"], "doc": "comparison mode"},
    }

    def __init__(self, threshold: float = 0.5, mode: str = "strict", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.threshold = threshold
        self.mode = mode

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        sample.setdefault("__stats__", {})["score"] = float(len(self.get_text(sample)))
        return sample

    def process(self, sample: dict) -> bool:
        return sample["__stats__"]["score"] >= self.threshold
