"""Clean: every own constructor param has a documented PARAM_SPECS entry."""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS


@OPERATORS.register_module("clean_param_spec_coverage")
class CleanParamSpecCoverageMapper(Mapper):
    """Truncates texts, optionally appending a marker."""

    PARAM_SPECS = {
        "max_chars": {"min_value": 0, "doc": "maximum kept length (chars)"},
        "marker": {"doc": "suffix appended when the text was truncated"},
    }

    def __init__(self, max_chars: int = 80, marker: str = "...", text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.max_chars = max_chars
        self.marker = marker

    def process(self, sample: dict) -> dict:
        text = self.get_text(sample)
        if len(text) > self.max_chars:
            text = text[: self.max_chars] + self.marker
        return self.set_text(sample, text)
