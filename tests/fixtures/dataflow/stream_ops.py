"""Synthetic ops for the stream-unsafe golden fixtures.

Parsed by the effect-signature extractor, never imported.  The probe op sits
outside the streamable categories; the sidecar deduplicator stores its
signature outside the standard hash columns the streaming engine knows how
to carry across shards.
"""

from repro.core.base_op import OP, Deduplicator
from repro.core.registry import OPERATORS


@OPERATORS.register_module("corpus_probe_op")
class CorpusProbeOp(OP):
    """A whole-corpus probe outside the streamable categories."""

    def process(self, dataset):
        return dataset


@OPERATORS.register_module("sidecar_signature_deduplicator")
class SidecarSignatureDeduplicator(Deduplicator):
    """Stores its dedup signature in a non-standard column."""

    def compute_hash(self, sample: dict) -> dict:
        sample["dedup_sig"] = self.get_text(sample)
        return sample

    def process(self, dataset):
        seen = set()
        keep = []
        for index, sample in enumerate(dataset):
            signature = sample.get("dedup_sig")
            if signature not in seen:
                seen.add(signature)
                keep.append(index)
        return dataset.select(keep)
