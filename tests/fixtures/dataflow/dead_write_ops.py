"""Synthetic mapper ops for the dead-write golden fixtures.

These modules are parsed by the effect-signature extractor, never imported,
so they stay out of the operator registry (the same convention as the lint
fixtures under ``tests/fixtures/lint/``).
"""

from repro.core.base_op import Mapper
from repro.core.registry import OPERATORS
from repro.core.sample import set_field


@OPERATORS.register_module("meta_tag_writer_mapper")
class MetaTagWriterMapper(Mapper):
    """Stamps a meta tag without ever reading it back."""

    def process(self, sample: dict) -> dict:
        set_field(sample, "meta.tag", "tagged")
        return sample


@OPERATORS.register_module("stats_sidecar_tagger_mapper")
class StatsSidecarTaggerMapper(Mapper):
    """Writes a bookkeeping stat no later step consumes."""

    def process(self, sample: dict) -> dict:
        set_field(sample, "__stats__.sidecar_tag", 1)
        return sample
