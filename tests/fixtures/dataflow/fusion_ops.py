"""Synthetic filters for the fusion-unsafe golden fixtures.

Parsed by the effect-signature extractor, never imported.  The alpha and
beta filters share the ``words`` context (fusible); the depends-on-alpha
filter consumes alpha's stat without sharing any context, so fusion moves
its producer behind it.
"""

from repro.core.base_op import Filter
from repro.core.context import ContextKeys, get_or_compute
from repro.core.registry import OPERATORS
from repro.core.sample import ensure_stats


@OPERATORS.register_module("wordcount_alpha_filter")
class WordcountAlphaFilter(Filter):
    """Counts words into a custom stat, sharing the words context."""

    context_keys = (ContextKeys.words,)

    def __init__(self, min_words: int = 1, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.min_words = min_words

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        words = get_or_compute(
            sample, ContextKeys.words, lambda: self.get_text(sample).split()
        )
        stats["alpha_wc"] = len(words)
        return sample

    def process(self, sample: dict) -> bool:
        return sample["__stats__"].get("alpha_wc", 0) >= self.min_words


@OPERATORS.register_module("wordcount_beta_filter")
class WordcountBetaFilter(Filter):
    """A second words-sharing filter so the group has a fused pair."""

    context_keys = (ContextKeys.words,)

    def __init__(self, min_words: int = 1, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.min_words = min_words

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        stats = ensure_stats(sample)
        words = get_or_compute(
            sample, ContextKeys.words, lambda: self.get_text(sample).split()
        )
        stats["beta_wc"] = len(words)
        return sample

    def process(self, sample: dict) -> bool:
        return sample["__stats__"].get("beta_wc", 0) >= self.min_words


@OPERATORS.register_module("depends_on_alpha_filter")
class DependsOnAlphaFilter(Filter):
    """Consumes the alpha word count without sharing any context."""

    def __init__(self, min_words: int = 1, text_key: str = "text", **kwargs):
        super().__init__(text_key=text_key, **kwargs)
        self.min_words = min_words

    def compute_stats(self, sample: dict, context: bool = False) -> dict:
        ensure_stats(sample)
        return sample

    def process(self, sample: dict) -> bool:
        return sample["__stats__"].get("alpha_wc", 0) >= self.min_words
