"""Tests for the unified observability layer across all three execution modes.

The invariants under test:

* ``run()`` and ``run_streaming()`` emit structurally identical
  :class:`~repro.core.report.RunReport` objects — same ops, same kept/dropped
  counts, same trace summaries — on real recipes.
* A streaming re-run with ``use_cache`` over unchanged inputs replays cached
  shard outputs instead of recomputing them (the ISSUE-4 acceptance
  criterion).
* The streaming tracer's memory stays bounded (first-``show_num``
  reservoirs), never O(corpus).
"""

import json

import pytest

from repro.core.executor import Executor
from repro.core.monitor import RunProfiler
from repro.core.report import OpReport, REPORT_FILE, RunReport
from repro.core.tracer import StreamingTracer
from repro.ops import build_ops
from repro.recipes import get_recipe

from tests.test_streaming import messy_corpus_rows, write_jsonl


# ----------------------------------------------------------------------
# RunReport object
# ----------------------------------------------------------------------
class TestRunReport:
    def make_report(self):
        return RunReport(
            mode="memory",
            plan=[{"op": "x"}],
            num_output_samples=7,
            ops=[OpReport("text_length_filter", "filter", rows_in=10, rows_out=7,
                          calls=1, wall_time_s=0.5)],
            cache={"hits": 1, "misses": 2, "shard_hits": 0, "shard_misses": 0},
            resources={"wall_time_s": 1.0, "max_rss_mb": 10.0},
            parallel={"np": 1, "batch_size": None, "start_method": None},
            export_paths=["/tmp/out.jsonl"],
        )

    def test_mapping_interface_backwards_compatible(self):
        report = self.make_report()
        assert report["num_output_samples"] == 7
        assert report["cache"]["hits"] == 1
        assert report.get("export_paths") == ["/tmp/out.jsonl"]
        assert report.get("missing", "fallback") == "fallback"
        assert set(report) == set(report.as_dict())

    def test_round_trip_through_json(self, tmp_path):
        report = self.make_report()
        path = report.save(tmp_path / "report.json")
        loaded = RunReport.load(path)
        assert loaded.as_dict() == report.as_dict()
        # loading from the directory finds the canonical file name
        report.save(tmp_path / REPORT_FILE)
        assert RunReport.load(tmp_path).as_dict() == report.as_dict()

    def test_derived_op_fields(self):
        op = OpReport("f", "filter", rows_in=100, rows_out=60, wall_time_s=2.0)
        assert op.removed == 40
        assert op.rows_per_sec == pytest.approx(50.0)
        assert OpReport("f", "filter").rows_per_sec == 0.0

    def test_render_mentions_every_op(self):
        text = self.make_report().render()
        assert "text_length_filter" in text
        assert "mode=memory" in text


class TestRunProfiler:
    def test_aggregates_across_calls(self):
        ops = build_ops([{"text_length_filter": {"min_len": 1}}])
        profiler = RunProfiler()
        for _ in range(3):
            with profiler.track(ops[0], rows_in=10) as tracking:
                tracking.rows_out = 8
        (profile,) = profiler.reports()
        assert (profile.calls, profile.rows_in, profile.rows_out) == (3, 30, 24)
        assert profile.wall_time_s > 0
        assert profile.op_type == "filter"

    def test_unset_rows_out_counts_time_but_not_rows(self):
        ops = build_ops([{"document_deduplicator": {}}])
        profiler = RunProfiler()
        with profiler.track(ops[0], rows_in=10):
            pass  # e.g. a Deduplicator's hashing stage: timed, rows deferred
        (profile,) = profiler.reports()
        assert (profile.calls, profile.rows_in, profile.rows_out) == (1, 0, 0)

    def test_cached_calls_tracked_separately(self):
        ops = build_ops([{"text_length_filter": {"min_len": 1}}])
        profiler = RunProfiler()
        profiler.record_cached(ops[0], 5)
        (profile,) = profiler.reports()
        assert profile.cached_calls == 1 and profile.rows_in == 0


# ----------------------------------------------------------------------
# Streaming tracer
# ----------------------------------------------------------------------
class TestStreamingTracer:
    def test_examples_stay_bounded_across_shards(self):
        from repro.core.dataset import NestedDataset

        tracer = StreamingTracer(show_num=4)
        for shard in range(10):
            before = NestedDataset.from_list(
                [{"text": f"shard {shard} row {i}"} for i in range(20)]
            )
            after = NestedDataset.from_list(
                [{"text": f"EDITED {shard} row {i}"} for i in range(20)]
            )
            tracer.trace_mapper("m", before, after)
        summary = tracer.summary()
        assert summary == [
            {"op_name": "m", "op_type": "mapper", "input_size": 200,
             "output_size": 200, "removed": 0}
        ]
        assert len(tracer.records[0].examples) == 4  # bounded, never O(corpus)

    def test_filter_accumulates_with_global_indexes(self):
        from repro.core.dataset import NestedDataset

        tracer = StreamingTracer(show_num=10)
        first = NestedDataset.from_list([{"text": "keep"}, {"text": "drop-a"}])
        second = NestedDataset.from_list([{"text": "drop-b"}, {"text": "keep"}])
        kept = NestedDataset.from_list([{"text": "keep"}])
        tracer.trace_filter("f", first, kept)
        tracer.trace_filter("f", second, kept)
        record = tracer.register("f", "filter")
        assert (record.input_size, record.output_size) == (4, 2)
        assert [example["index"] for example in record.examples] == [1, 2]

    def test_finalize_is_idempotent_and_writes_files(self, tmp_path):
        from repro.core.dataset import NestedDataset

        tracer = StreamingTracer(show_num=2, trace_dir=tmp_path)
        dataset = NestedDataset.from_list([{"text": "a"}])
        tracer.trace_filter("f", dataset, dataset)
        tracer.finalize()
        tracer.finalize()
        assert len(tracer.records) == 1
        assert len(list(tmp_path.glob("trace-*.jsonl"))) == 1

    def test_preregistration_fixes_summary_order(self):
        tracer = StreamingTracer()
        tracer.register("first_op", "mapper")
        tracer.register("second_op", "filter")
        tracer.observe_global("second_op", "filter", 10, 5)
        names = [entry["op_name"] for entry in tracer.summary()]
        assert names == ["first_op", "second_op"]


# ----------------------------------------------------------------------
# Mode parity: run() vs run_streaming() reports
# ----------------------------------------------------------------------
class TestReportParity:
    @pytest.mark.parametrize("recipe_name", ["pretrain-c4-refine-en"])
    def test_fig8_recipe_reports_structurally_identical(self, tmp_path, recipe_name):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(160))
        process = get_recipe(recipe_name)["process"]
        memory = Executor({
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "memory.jsonl"),
            "process": process,
            "work_dir": str(tmp_path / "wm"),
            "open_tracer": True,
        })
        result = memory.run()
        streaming = Executor({
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "stream.jsonl"),
            "process": process,
            "work_dir": str(tmp_path / "ws"),
            "max_shard_rows": 23,
            "open_tracer": True,
        })
        stream_report = streaming.run_streaming()

        assert isinstance(memory.last_report, RunReport)
        assert isinstance(stream_report, RunReport)
        # same ops, same kept/dropped counts — the acceptance criterion
        assert memory.last_report.op_summary() == stream_report.op_summary()
        assert memory.last_report["trace"] == stream_report["trace"]
        assert memory.last_report["num_output_samples"] == len(result)
        assert stream_report["num_output_samples"] == len(result)
        # per-op sections carry real measurements in both modes
        for report in (memory.last_report, stream_report):
            assert all(op.wall_time_s > 0 for op in report.ops)
            assert all(op.max_rss_mb > 0 for op in report.ops)

    def test_reports_persisted_to_work_dir(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(40))
        config = {
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "out.jsonl"),
            "process": [{"text_length_filter": {"min_len": 40}}],
            "work_dir": str(tmp_path / "work"),
            "max_shard_rows": 10,
        }
        report = Executor(config).run_streaming()
        loaded = RunReport.load(tmp_path / "work")
        assert loaded.as_dict() == report.as_dict()
        assert loaded.mode == "streaming"
        assert loaded.ops and loaded.ops[0].name == "text_length_filter"


# ----------------------------------------------------------------------
# Shard-level cache (the ISSUE-4 acceptance criterion)
# ----------------------------------------------------------------------
def cached_stream_config(tmp_path, input_path, process, **overrides):
    config = {
        "dataset_path": str(input_path),
        "export_path": str(tmp_path / "out.jsonl"),
        "process": process,
        "work_dir": str(tmp_path / "work"),
        "max_shard_rows": 25,
        "use_cache": True,
    }
    config.update(overrides)
    return config


PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"text_length_filter": {"min_len": 40}},
    {"document_deduplicator": {}},
    {"words_num_filter": {"min_num": 5}},
]


class TestStreamingShardCache:
    def test_rerun_hits_shard_cache_and_skips_recomputation(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(150))
        config = cached_stream_config(tmp_path, input_path, PROCESS)
        first = Executor(config).run_streaming()
        assert first["cache"]["shard_hits"] == 0
        assert first["cache"]["shard_misses"] > 0
        assert first["shards"]["executed_shards"] > 0

        rerun = Executor(config)
        calls = {"count": 0}
        for op in rerun.ops:
            # the shard-local entry points: stats/keep for Mappers/Filters,
            # per-sample hashing for Deduplicators
            method = (
                "process_batched" if hasattr(op, "process_batched") else "compute_hash_batched"
            )
            original = getattr(op, method)

            def spy(samples, _original=original):
                calls["count"] += 1
                return _original(samples)

            setattr(op, method, spy)
        second = rerun.run_streaming()

        assert second["cache"]["shard_hits"] >= 1
        # cached_shards counts shard*stage units: every input shard of every
        # pipeline segment was answered from the cache
        assert second["shards"]["cached_shards"] >= second["shards"]["input_shards"]
        assert second["shards"]["executed_shards"] == 0
        assert calls["count"] == 0  # recomputation genuinely skipped
        assert second["num_output_samples"] == first["num_output_samples"]
        assert any(op.cached_calls > 0 for op in rerun.last_report.ops)

    def test_input_edit_misses_shard_cache(self, tmp_path):
        rows = messy_corpus_rows(80)
        input_path = write_jsonl(tmp_path / "in.jsonl", rows)
        config = cached_stream_config(tmp_path, input_path, PROCESS)
        Executor(config).run_streaming()
        edited = [{"text": "brand new " + row["text"], "meta": row["meta"]} for row in rows]
        write_jsonl(input_path, edited)
        report = Executor(config).run_streaming()
        assert report["cache"]["shard_hits"] == 0
        assert report["shards"]["executed_shards"] > 0

    def test_config_edit_reexecutes_the_edited_stage(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(80))
        config = cached_stream_config(tmp_path, input_path, PROCESS)
        Executor(config).run_streaming()
        edited_process = [
            {"whitespace_normalization_mapper": {}},
            {"text_length_filter": {"min_len": 60}},  # edited threshold
            {"document_deduplicator": {}},
            {"words_num_filter": {"min_num": 5}},
        ]
        # the edited op's fingerprint chain changed, so its stage re-executes
        # (downstream stages may still legitimately hit on shards whose
        # content the edit did not change — the cache is content-keyed);
        # the output must match a cache-free reference run exactly
        report = Executor(
            cached_stream_config(tmp_path, input_path, edited_process)
        ).run_streaming()
        assert report["shards"]["executed_shards"] > 0
        reference = dict(
            cached_stream_config(tmp_path, input_path, edited_process),
            use_cache=False,
            export_path=str(tmp_path / "reference.jsonl"),
            work_dir=str(tmp_path / "work-ref"),
        )
        Executor(reference).run_streaming()
        assert (tmp_path / "out.jsonl").read_bytes() == (
            tmp_path / "reference.jsonl"
        ).read_bytes()

    def test_cached_rerun_export_is_byte_identical(self, tmp_path):
        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(100))
        config = cached_stream_config(tmp_path, input_path, PROCESS)
        Executor(config).run_streaming()
        first_bytes = (tmp_path / "out.jsonl").read_bytes()
        report = Executor(config).run_streaming()
        assert report["cache"]["shard_hits"] > 0
        assert (tmp_path / "out.jsonl").read_bytes() == first_bytes


# ----------------------------------------------------------------------
# CLI + analyzer consumption of run reports
# ----------------------------------------------------------------------
class TestReportConsumers:
    def run_streaming_once(self, tmp_path, shard_output=False):
        from repro.cli import main

        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(60))
        args = [
            "process",
            "--dataset", str(input_path),
            "--recipe", "dedup-only-exact",
            "--export", str(tmp_path / "export" / "out.jsonl"),
            "--work-dir", str(tmp_path / "work"),
            "--stream", "--max-shard-rows", "16",
        ]
        if shard_output:
            args.append("--shard-output")
        assert main(args) == 0
        return tmp_path / "work"

    def test_report_subcommand_renders_text_and_json(self, tmp_path, capsys):
        from repro.cli import main

        work_dir = self.run_streaming_once(tmp_path)
        assert main(["report", "--work-dir", str(work_dir)]) == 0
        text = capsys.readouterr().out
        assert "mode=streaming" in text
        assert "document_deduplicator" in text

        assert main(["report", "--work-dir", str(work_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "streaming"
        assert payload["ops"][0]["name"] == "document_deduplicator"

    def test_report_subcommand_missing_report_fails(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no run report"):
            main(["report", "--work-dir", str(tmp_path)])

    def test_analyzer_consumes_streaming_run_export(self, tmp_path):
        from repro.analysis.analyzer import Analyzer

        work_dir = self.run_streaming_once(tmp_path, shard_output=True)
        analyzer = Analyzer(
            analysis_process=[{"text_length_filter": {}}], with_diversity=False
        )
        probe = analyzer.analyze_run(work_dir)
        report = RunReport.load(work_dir)
        assert probe.num_samples == report.num_output_samples
        assert "text_len" in probe.summaries

    def test_analyze_stream_matches_in_memory_probe(self, tmp_path):
        from repro.analysis.analyzer import Analyzer
        from repro.formats.load import load_dataset, load_formatter

        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(50))
        analyzer = Analyzer(analysis_process=[{"words_num_filter": {}}])
        in_memory = analyzer.analyze(load_dataset(str(input_path)))
        streamed = analyzer.analyze_stream(
            load_formatter(str(input_path)).iter_records()
        )
        assert streamed.num_samples == in_memory.num_samples
        assert {
            name: summary.as_dict() for name, summary in streamed.summaries.items()
        } == {name: summary.as_dict() for name, summary in in_memory.summaries.items()}
        assert streamed.diversity.verb_counts == in_memory.diversity.verb_counts

    def test_analyze_run_txt_export_is_line_per_document(self, tmp_path):
        """Regression: a .txt export is one document per line, and must not
        be collapsed into a single sample by the whole-file text formatter."""
        from repro.analysis.analyzer import Analyzer

        rows = [
            {"text": f"single line document number {index} with enough words"}
            for index in range(40)
        ]
        input_path = write_jsonl(tmp_path / "in.jsonl", rows)
        report = Executor({
            "dataset_path": str(input_path),
            "export_path": str(tmp_path / "out.txt"),
            "process": [],
            "work_dir": str(tmp_path / "work"),
        }).run_streaming()
        probe = Analyzer(
            analysis_process=[{"text_length_filter": {}}], with_diversity=False
        ).analyze_run(report)
        assert probe.num_samples == 40

    def test_analyze_cli_stream_flag(self, tmp_path, capsys):
        from repro.cli import main

        input_path = write_jsonl(tmp_path / "in.jsonl", messy_corpus_rows(30, duplicates=0))
        assert main(["analyze", "--dataset", str(input_path), "--stream"]) == 0
        assert "Data probe over 30 samples" in capsys.readouterr().out

    def test_analyze_cli_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        work_dir = self.run_streaming_once(tmp_path)
        assert main(["analyze", "--report", str(work_dir)]) == 0
        assert "Data probe over" in capsys.readouterr().out
