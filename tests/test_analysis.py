"""Tests for the analyzer: overall stats, histograms, box plots and diversity analysis."""

from repro.analysis.analyzer import Analyzer
from repro.analysis.diversity_analysis import DiversityAnalysis, extract_verb_noun
from repro.analysis.histogram import build_box_plot, build_histogram
from repro.analysis.overall_analysis import OverallAnalysis, collect_stats_values
from repro.core.dataset import NestedDataset
from repro.core.sample import Fields
from repro.synth import instruction_dataset, wikipedia_like


def stats_dataset():
    return NestedDataset.from_list(
        [
            {"text": "a", Fields.stats: {"text_len": 10, "lang": "en"}},
            {"text": "b", Fields.stats: {"text_len": 30, "lang": "en"}},
            {"text": "c", Fields.stats: {"text_len": 50, "lang": "zh"}},
        ]
    )


class TestOverallAnalysis:
    def test_numeric_summary(self):
        summaries = OverallAnalysis().analyze(stats_dataset())
        summary = summaries["text_len"]
        assert summary.kind == "numeric"
        assert summary.count == 3
        assert summary.mean == 30
        assert summary.minimum == 10 and summary.maximum == 50
        assert "p50" in summary.quantiles

    def test_categorical_summary(self):
        summary = OverallAnalysis().analyze(stats_dataset())["lang"]
        assert summary.kind == "categorical"
        assert summary.value_counts == {"en": 2, "zh": 1}
        assert summary.entropy > 0

    def test_collect_stats_values(self):
        values = collect_stats_values(stats_dataset())
        assert values["text_len"] == [10, 30, 50]

    def test_as_dict_round(self):
        summaries = OverallAnalysis().analyze(stats_dataset())
        payload = summaries["text_len"].as_dict()
        assert payload["name"] == "text_len" and payload["kind"] == "numeric"


class TestHistogramAndBoxPlot:
    def test_histogram_counts_sum_to_total(self):
        histogram = build_histogram("x", [1, 2, 2, 3, 10], num_bins=5)
        assert histogram.total == 5
        assert "Histogram of x" in histogram.render()

    def test_empty_histogram(self):
        histogram = build_histogram("x", [])
        assert histogram.total == 0

    def test_box_plot_five_numbers(self):
        box = build_box_plot("x", [1, 2, 3, 4, 5])
        assert box.minimum == 1 and box.maximum == 5 and box.median == 3
        assert "median" in box.render()


class TestDiversityAnalysis:
    def test_extract_verb_noun(self):
        verb, noun = extract_verb_noun("Summarize the research paper about data systems")
        assert verb == "summarize"
        assert noun is not None

    def test_extract_handles_no_verb(self):
        assert extract_verb_noun("apple banana cherry") == (None, None)

    def test_report_counts(self):
        dataset = instruction_dataset(num_samples=50, seed=1)
        report = DiversityAnalysis().analyze(dataset)
        assert report.num_samples == 50
        assert report.distinct_verbs > 1
        assert 0.0 <= report.diversity_score() <= 1.0

    def test_top_structure(self):
        dataset = instruction_dataset(num_samples=50, seed=2)
        top = DiversityAnalysis().analyze(dataset).top(num_verbs=5, nouns_per_verb=2)
        assert len(top) <= 5
        assert all(len(nouns) <= 2 for nouns in top.values())


class TestAnalyzer:
    def test_probe_covers_default_dimensions(self):
        probe = Analyzer(with_diversity=False).analyze(wikipedia_like(num_samples=10, seed=3))
        # the default probe covers the 13 statistics dimensions of the paper
        numeric = [s for s in probe.summaries.values() if s.kind == "numeric"]
        assert len(numeric) >= 12
        assert probe.num_samples == 10

    def test_probe_does_not_drop_samples(self):
        dataset = wikipedia_like(num_samples=8, seed=4)
        with_stats = Analyzer(with_diversity=False).compute_stats(dataset)
        assert len(with_stats) == len(dataset)

    def test_custom_analysis_process(self):
        probe = Analyzer(
            analysis_process=[{"text_length_filter": {}}], with_diversity=False
        ).analyze(wikipedia_like(num_samples=5, seed=5))
        assert set(probe.summaries) == {"text_len"}

    def test_render_contains_diversity_line(self):
        probe = Analyzer().analyze(instruction_dataset(num_samples=10, seed=6))
        assert "diversity:" in probe.render()

    def test_histograms_present_for_numeric_stats(self):
        probe = Analyzer(with_diversity=False).analyze(wikipedia_like(num_samples=6, seed=7))
        assert "text_len" in probe.histograms
        assert "text_len" in probe.box_plots
