"""Tests for the execution planner (:mod:`repro.core.planner`) and
``Executor.execute`` — the mode-agnostic entry the fluent API runs through."""

import gzip
import json

import pytest

from repro.core.config import load_config
from repro.core.errors import ConfigError
from repro.core.executor import Executor
from repro.core.planner import (
    GZIP_EXPANSION_FACTOR,
    MEMORY_EXPANSION_FACTOR,
    ExecutionPlan,
    ResourceBudget,
    estimate_input_bytes,
    plan_execution,
)
from repro.core.dataset import NestedDataset


def write_jsonl(path, rows):
    path.write_text("\n".join(json.dumps(row) for row in rows), encoding="utf-8")
    return path


@pytest.fixture()
def dataset_file(tmp_path):
    return write_jsonl(
        tmp_path / "data.jsonl",
        [{"text": "a reasonably long document " * 4} for _ in range(50)],
    )


def config_for(dataset_file, **extra):
    payload = {"dataset_path": str(dataset_file), "process": []}
    payload.update(extra)
    return load_config(payload)


class TestEstimateInputBytes:
    def test_single_file(self, dataset_file):
        assert estimate_input_bytes(config_for(dataset_file)) == dataset_file.stat().st_size

    def test_gzip_inflated(self, tmp_path):
        path = tmp_path / "data.jsonl.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(json.dumps({"text": "hello"}) + "\n")
        estimated = estimate_input_bytes(config_for(path))
        assert estimated == int(path.stat().st_size * GZIP_EXPANSION_FACTOR)

    def test_directory_sums_files(self, tmp_path):
        for index in range(3):
            write_jsonl(tmp_path / f"shard-{index}.jsonl", [{"text": "x" * 100}])
        total = sum(p.stat().st_size for p in tmp_path.glob("*.jsonl"))
        assert estimate_input_bytes(config_for(tmp_path)) == total

    def test_in_memory_dataset_extrapolates(self, dataset_file):
        dataset = NestedDataset.from_list([{"text": "x" * 100} for _ in range(10)])
        estimated = estimate_input_bytes(config_for(dataset_file), dataset)
        assert estimated >= 1000  # ~100 chars x 10 rows

    def test_missing_input_is_unknown(self, tmp_path):
        cfg = load_config({"dataset_path": str(tmp_path / "nope.jsonl"), "process": []})
        assert estimate_input_bytes(cfg) is None


class TestPlanExecution:
    def test_explicit_modes_always_win(self, dataset_file):
        cfg = config_for(dataset_file, stream=True)
        assert plan_execution(cfg, mode="memory").mode == "memory"
        assert plan_execution(config_for(dataset_file), mode="streaming").mode == "streaming"

    def test_unknown_mode_raises(self, dataset_file):
        with pytest.raises(ConfigError, match="unknown execution mode"):
            plan_execution(config_for(dataset_file), mode="turbo")

    def test_recipe_stream_respected_under_auto(self, dataset_file):
        plan = plan_execution(config_for(dataset_file, stream=True))
        assert plan.mode == "streaming"
        assert any("stream: true" in reason for reason in plan.reasons)

    def test_small_input_stays_in_memory(self, dataset_file):
        plan = plan_execution(config_for(dataset_file), budget=ResourceBudget(1 << 30))
        assert plan.mode == "memory"
        assert plan.estimated_memory_bytes == int(
            dataset_file.stat().st_size * MEMORY_EXPANSION_FACTOR
        )

    def test_over_budget_input_streams(self, dataset_file):
        plan = plan_execution(config_for(dataset_file), budget=ResourceBudget(64))
        assert plan.mode == "streaming"
        assert any("exceeds" in reason for reason in plan.reasons)

    def test_recipe_memory_budget_used(self, dataset_file):
        plan = plan_execution(config_for(dataset_file, memory_budget=64))
        assert plan.budget_bytes == 64
        assert plan.mode == "streaming"

    def test_recipe_memory_budget_beats_caller_budget(self, dataset_file):
        plan = plan_execution(
            config_for(dataset_file, memory_budget=64), budget=ResourceBudget(1 << 40)
        )
        assert plan.budget_bytes == 64
        assert plan.mode == "streaming"

    def test_materialised_dataset_stays_in_memory(self, dataset_file):
        dataset = NestedDataset.from_list([{"text": "x" * 4096} for _ in range(100)])
        plan = plan_execution(config_for(dataset_file), dataset=dataset, budget=ResourceBudget(64))
        assert plan.mode == "memory"

    def test_unknown_size_defaults_to_memory(self, tmp_path):
        cfg = load_config({"process": []})
        plan = plan_execution(cfg, budget=ResourceBudget(64))
        assert plan.mode == "memory"
        assert any("unknown" in reason for reason in plan.reasons)

    def test_engine_reflects_np(self, dataset_file):
        assert plan_execution(config_for(dataset_file)).engine == "batched"
        assert plan_execution(config_for(dataset_file, np=4)).engine == "pooled"

    def test_as_dict_and_describe(self, dataset_file):
        plan = plan_execution(config_for(dataset_file))
        payload = plan.as_dict()
        assert payload["mode"] == plan.mode and payload["reasons"] == plan.reasons
        assert "plan: mode=" in plan.describe()

    def test_detect_returns_positive_budget(self):
        assert ResourceBudget.detect().max_memory_bytes > 0


class TestExecutorExecute:
    def process(self):
        return [{"text_length_filter": {"min_len": 5}}]

    def test_execute_memory_and_report_section(self, dataset_file, tmp_path):
        with Executor(
            {
                "dataset_path": str(dataset_file),
                "process": self.process(),
                "work_dir": str(tmp_path / "work"),
            }
        ) as executor:
            report = executor.execute(budget=ResourceBudget(1 << 30))
        assert report["mode"] == "memory"
        assert report["planner"]["mode"] == "memory"
        assert isinstance(executor.last_plan, ExecutionPlan)

    def test_execute_streaming_when_over_budget(self, dataset_file, tmp_path):
        export = tmp_path / "out.jsonl"
        with Executor(
            {
                "dataset_path": str(dataset_file),
                "process": self.process(),
                "work_dir": str(tmp_path / "work"),
                "export_path": str(export),
            }
        ) as executor:
            report = executor.execute(budget=ResourceBudget(64))
        assert report["mode"] == "streaming"
        assert export.exists()
        assert report["planner"]["reasons"]

    def test_execute_modes_export_identical_bytes(self, dataset_file, tmp_path):
        outputs = {}
        for mode in ("memory", "streaming"):
            export = tmp_path / f"{mode}.jsonl"
            with Executor(
                {
                    "dataset_path": str(dataset_file),
                    "process": self.process(),
                    "work_dir": str(tmp_path / f"work-{mode}"),
                    "export_path": str(export),
                }
            ) as executor:
                executor.execute(mode=mode)
            outputs[mode] = export.read_bytes()
        assert outputs["memory"] == outputs["streaming"]

    def test_persisted_report_carries_planner(self, dataset_file, tmp_path):
        from repro.core.report import RunReport

        work = tmp_path / "work"
        with Executor(
            {
                "dataset_path": str(dataset_file),
                "process": self.process(),
                "work_dir": str(work),
            }
        ) as executor:
            executor.execute(budget=ResourceBudget(1 << 30))
        loaded = RunReport.load(work)
        assert loaded.planner is not None and loaded.planner["requested"] == "auto"
