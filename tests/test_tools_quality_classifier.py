"""Tests for the quality-classifier pipeline (tokenizers, hashing features, model, keeping rules)."""

import numpy as np
import pytest

from repro.core.sample import Fields
from repro.synth import common_crawl_like, wikipedia_like
from repro.tools.quality_classifier.features import HashingVectorizer
from repro.tools.quality_classifier.model import LogisticRegression, precision_recall_f1
from repro.tools.quality_classifier.pipeline import QualityClassifier
from repro.tools.quality_classifier.tokenizer import StandardTokenizer, UnigramTokenizer


class TestTokenizers:
    def test_standard_tokenizer_lowercases(self):
        assert StandardTokenizer().tokenize("Hello World!") == ["hello", "world"]

    def test_unigram_tokenizer_untrained_falls_back_to_chars(self):
        assert UnigramTokenizer().tokenize("ab c") == ["a", "b", "c"]

    def test_unigram_tokenizer_learns_pieces(self):
        tokenizer = UnigramTokenizer(vocab_size=50, max_piece_len=4)
        tokenizer.train(["the data system processes the data"] * 5)
        tokens = tokenizer.tokenize("the data")
        assert any(len(token) > 1 for token in tokens)
        assert tokenizer.is_trained

    def test_unigram_tokenizer_roundtrip_covers_text(self):
        tokenizer = UnigramTokenizer(vocab_size=100).train(["hello world"] * 3)
        assert "".join(tokenizer.tokenize("hello world")) == "helloworld"


class TestHashingVectorizer:
    def test_output_shape(self):
        vectorizer = HashingVectorizer(num_features=64)
        matrix = vectorizer.transform([["a", "b"], ["c"]])
        assert matrix.shape == (2, 64)

    def test_same_tokens_same_vector(self):
        vectorizer = HashingVectorizer(num_features=64)
        assert np.allclose(vectorizer.transform_one(["x", "y"]), vectorizer.transform_one(["x", "y"]))

    def test_l2_normalized(self):
        vector = HashingVectorizer(num_features=32).transform_one(["a", "b", "c"])
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_empty_batch(self):
        assert HashingVectorizer(num_features=8).transform([]).shape == (0, 8)

    def test_invalid_num_features(self):
        with pytest.raises(ValueError):
            HashingVectorizer(num_features=0)


class TestLogisticRegression:
    def test_learns_separable_data(self):
        rng = np.random.default_rng(0)
        features = np.vstack([rng.normal(1, 0.2, (50, 4)), rng.normal(-1, 0.2, (50, 4))])
        labels = np.array([1] * 50 + [0] * 50)
        model = LogisticRegression(num_iterations=200).fit(features, labels)
        metrics = precision_recall_f1(labels, model.predict(features))
        assert metrics["f1"] > 0.95

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((1, 3)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(4))

    def test_metrics_handle_degenerate_predictions(self):
        metrics = precision_recall_f1(np.array([1, 1]), np.array([0, 0]))
        assert metrics == {"precision": 0.0, "recall": 0.0, "f1": 0.0}


class TestQualityClassifierPipeline:
    @pytest.fixture(scope="class")
    def classifier(self):
        positives = [row[Fields.text] for row in wikipedia_like(num_samples=60, seed=0)]
        negatives = [
            row[Fields.text]
            for row in common_crawl_like(num_samples=60, seed=1, quality=0.0, duplicate_ratio=0.0)
        ]
        return QualityClassifier(num_iterations=300).fit(positives, negatives)

    def test_separates_held_out_data(self, classifier):
        positives = [row[Fields.text] for row in wikipedia_like(num_samples=25, seed=10)]
        negatives = [
            row[Fields.text]
            for row in common_crawl_like(num_samples=25, seed=11, quality=0.0, duplicate_ratio=0.0)
        ]
        result = classifier.evaluate(positives, negatives)
        assert result.f1 > 0.85

    def test_scores_in_unit_interval(self, classifier):
        scores = classifier.predict_scores(["any text at all"])
        assert 0.0 <= scores[0] <= 1.0

    def test_label_rule_keeps_more_than_pareto(self, classifier):
        crawl = [row[Fields.text] for row in common_crawl_like(200, seed=12, quality=0.05)]
        label_ratio = classifier.keeping_ratio(crawl, method="label")
        pareto_ratio = classifier.keeping_ratio(crawl, method="pareto")
        assert label_ratio >= pareto_ratio

    def test_keeping_ratio_small_on_low_quality_crawl(self, classifier):
        crawl = [row[Fields.text] for row in common_crawl_like(200, seed=13, quality=0.02)]
        assert classifier.keeping_ratio(crawl, method="label") < 0.4

    def test_unknown_keeping_method(self, classifier):
        with pytest.raises(ValueError):
            classifier.keep_mask(np.array([0.9]), method="magic")

    def test_annotate_dataset_adds_scores(self, classifier):
        dataset = wikipedia_like(num_samples=5, seed=14)
        annotated = classifier.annotate_dataset(dataset)
        assert all("quality_score" in row[Fields.stats] for row in annotated)

    def test_empty_predict(self, classifier):
        assert classifier.predict_scores([]).shape == (0,)

    def test_unknown_tokenizer_rejected(self):
        with pytest.raises(ValueError):
            QualityClassifier(tokenizer="bpe-external")
