"""Tests for the NestedDataset columnar substrate (including property-based tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import NestedDataset, concatenate_datasets, dataset_token_count
from repro.core.errors import DatasetError


def make_dataset(num_rows: int = 5) -> NestedDataset:
    return NestedDataset.from_list(
        [{"text": f"doc {index}", "meta": {"index": index}} for index in range(num_rows)]
    )


class TestConstruction:
    def test_from_list_and_len(self):
        dataset = make_dataset(4)
        assert len(dataset) == 4
        assert dataset.column_names == ["text", "meta"]

    def test_from_list_fills_missing_keys(self):
        dataset = NestedDataset.from_list([{"a": 1}, {"b": 2}])
        assert dataset[0] == {"a": 1, "b": None}
        assert dataset[1] == {"a": None, "b": 2}

    def test_from_dict(self):
        dataset = NestedDataset.from_dict({"text": ["a", "b"]})
        assert len(dataset) == 2

    def test_column_length_mismatch_raises(self):
        with pytest.raises(DatasetError):
            NestedDataset.from_dict({"a": [1, 2], "b": [1]})

    def test_empty(self):
        dataset = NestedDataset.empty()
        assert len(dataset) == 0
        assert dataset.to_list() == []


class TestAccess:
    def test_getitem_row(self):
        dataset = make_dataset()
        assert dataset[2]["text"] == "doc 2"

    def test_getitem_negative_index(self):
        dataset = make_dataset(3)
        assert dataset[-1]["text"] == "doc 2"

    def test_getitem_out_of_range(self):
        with pytest.raises(DatasetError):
            make_dataset(2)[5]

    def test_getitem_slice(self):
        rows = make_dataset(5)[1:3]
        assert [row["text"] for row in rows] == ["doc 1", "doc 2"]

    def test_getitem_column_name(self):
        dataset = make_dataset(3)
        assert dataset["text"] == ["doc 0", "doc 1", "doc 2"]

    def test_column_nested_path(self):
        dataset = make_dataset(3)
        assert dataset.column("meta.index") == [0, 1, 2]

    def test_unknown_column_raises(self):
        with pytest.raises(DatasetError):
            make_dataset().column("nope")

    def test_iteration(self):
        assert [row["text"] for row in make_dataset(2)] == ["doc 0", "doc 1"]

    def test_equality(self):
        assert make_dataset(3) == make_dataset(3)
        assert make_dataset(3) != make_dataset(4)


class TestTransforms:
    def test_map_returns_new_dataset(self):
        dataset = make_dataset(3)
        mapped = dataset.map(lambda row: {**row, "text": row["text"].upper()})
        assert mapped[0]["text"] == "DOC 0"
        assert dataset[0]["text"] == "doc 0"  # original untouched

    def test_map_batched(self):
        dataset = make_dataset(4)
        mapped = dataset.map(lambda batch: batch[:1], batched=True, batch_size=2)
        assert len(mapped) == 2

    def test_map_non_dict_result_raises(self):
        with pytest.raises(DatasetError):
            make_dataset(1).map(lambda row: "oops")

    def test_filter(self):
        dataset = make_dataset(6)
        kept = dataset.filter(lambda row: row["meta"]["index"] % 2 == 0)
        assert len(kept) == 3

    def test_select_preserves_order(self):
        dataset = make_dataset(5)
        subset = dataset.select([3, 1])
        assert [row["text"] for row in subset] == ["doc 3", "doc 1"]

    def test_select_out_of_range_raises(self):
        with pytest.raises(DatasetError):
            make_dataset(2).select([5])

    def test_add_column(self):
        dataset = make_dataset(2).add_column("score", [0.1, 0.2])
        assert dataset["score"] == [0.1, 0.2]

    def test_add_column_length_mismatch(self):
        with pytest.raises(DatasetError):
            make_dataset(3).add_column("score", [1])

    def test_remove_columns(self):
        dataset = make_dataset(2).remove_columns("meta")
        assert dataset.column_names == ["text"]

    def test_remove_missing_column_is_noop(self):
        dataset = make_dataset(2).remove_columns(["not_there"])
        assert dataset.column_names == ["text", "meta"]

    def test_rename_column(self):
        dataset = make_dataset(2).rename_column("text", "content")
        assert "content" in dataset.column_names
        assert "text" not in dataset.column_names

    def test_rename_unknown_raises(self):
        with pytest.raises(DatasetError):
            make_dataset(2).rename_column("nope", "x")

    def test_shuffle_is_deterministic_permutation(self):
        dataset = make_dataset(10)
        first = dataset.shuffle(seed=3)
        second = dataset.shuffle(seed=3)
        assert first.to_list() == second.to_list()
        assert sorted(row["text"] for row in first) == sorted(row["text"] for row in dataset)

    def test_train_test_split(self):
        splits = make_dataset(10).train_test_split(test_size=0.3, seed=1)
        assert len(splits["train"]) == 7
        assert len(splits["test"]) == 3

    def test_train_test_split_invalid_size(self):
        with pytest.raises(DatasetError):
            make_dataset(4).train_test_split(test_size=1.5)

    def test_take(self):
        assert len(make_dataset(5).take(2)) == 2
        assert len(make_dataset(2).take(10)) == 2

    def test_concatenate(self):
        merged = concatenate_datasets([make_dataset(2), make_dataset(3)])
        assert len(merged) == 5


class TestFingerprint:
    def test_fingerprint_changes_after_map(self):
        dataset = make_dataset(3)
        mapped = dataset.map(lambda row: row)
        assert dataset.fingerprint != mapped.fingerprint

    def test_identical_content_same_fingerprint(self):
        assert make_dataset(3).fingerprint == make_dataset(3).fingerprint

    def test_token_count(self):
        dataset = NestedDataset.from_list([{"text": "one two three"}, {"text": "four"}])
        assert dataset_token_count(dataset) == 4

    def test_num_bytes_positive(self):
        assert make_dataset(3).num_bytes() > 0


class TestColumnBatches:
    def test_iter_batches_slices_in_order(self):
        dataset = make_dataset(7)
        batches = list(dataset.iter_batches(3))
        assert [len(next(iter(batch.values()))) for batch in batches] == [3, 3, 1]
        from repro.core.batch import batch_concat

        assert batch_concat(batches) == dataset.to_dict()

    def test_iter_batches_rejects_bad_size(self):
        with pytest.raises(DatasetError):
            list(make_dataset(3).iter_batches(0))

    def test_from_batches_unions_columns_with_none_fill(self):
        merged = NestedDataset.from_batches(
            [{"text": ["a", "b"]}, {"text": ["c"], "extra": [1]}]
        )
        assert merged.to_list() == [
            {"text": "a", "extra": None},
            {"text": "b", "extra": None},
            {"text": "c", "extra": 1},
        ]

    def test_from_batches_zero_rows_matches_from_list_empty(self):
        assert NestedDataset.from_batches([{"text": []}]).to_dict() == {}
        assert NestedDataset.from_batches([]).to_dict() == {}

    def test_map_batches_matches_map(self):
        dataset = make_dataset(10)
        def upper_batch(batch):
            batch["text"] = [text.upper() for text in batch["text"]]
            return batch

        fingerprint = "shared-fp"
        batched = dataset.map_batches(upper_batch, batch_size=4, new_fingerprint=fingerprint)
        per_row = dataset.map(
            lambda row: dict(row, text=row["text"].upper()), new_fingerprint=fingerprint
        )
        assert batched.to_list() == per_row.to_list()
        assert batched.fingerprint == per_row.fingerprint

    def test_map_batches_can_change_row_count(self):
        dataset = make_dataset(4)
        halved = dataset.map_batches(
            lambda batch: {key: values[:1] for key, values in batch.items()}, batch_size=2
        )
        assert len(halved) == 2

    def test_map_batches_rejects_non_dict_result(self):
        with pytest.raises(DatasetError):
            make_dataset(3).map_batches(lambda batch: [batch])

    def test_filter_batches_matches_filter(self):
        dataset = make_dataset(9)
        keep = lambda text: len(text) % 2 == 0
        fingerprint = "shared-fp"
        batched = dataset.filter_batches(
            lambda batch: [keep(text) for text in batch["text"]],
            batch_size=4,
            new_fingerprint=fingerprint,
        )
        per_row = dataset.filter(lambda row: keep(row["text"]), new_fingerprint=fingerprint)
        assert batched.to_list() == per_row.to_list()
        assert batched.fingerprint == per_row.fingerprint

    def test_batches_share_cells_but_not_columns(self):
        dataset = make_dataset(4)
        batch = next(dataset.iter_batches(4))
        batch["text"] = ["changed"] * 4
        assert dataset[0]["text"] != "changed"

    def test_derive_fingerprint_is_incremental_and_stable(self):
        dataset = make_dataset(5)
        first = dataset.derive_fingerprint("some_op", {"a": 1})
        assert first == dataset.derive_fingerprint("some_op", {"a": 1})
        assert first != dataset.derive_fingerprint("some_op", {"a": 2})
        assert first != dataset.derive_fingerprint("other_op", {"a": 1})
        other = NestedDataset.from_list([{"text": "entirely different"}])
        assert first != other.derive_fingerprint("some_op", {"a": 1})


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
texts = st.lists(st.text(max_size=30), min_size=0, max_size=25)


class TestProperties:
    @given(texts)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_from_list_to_list(self, values):
        rows = [{"text": value} for value in values]
        assert NestedDataset.from_list(rows).to_list() == rows

    @given(texts)
    @settings(max_examples=30, deadline=None)
    def test_filter_never_grows(self, values):
        dataset = NestedDataset.from_list([{"text": value} for value in values])
        kept = dataset.filter(lambda row: len(row["text"]) > 5)
        assert len(kept) <= len(dataset)

    @given(texts, st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_select_prefix_matches_take(self, values, count):
        dataset = NestedDataset.from_list([{"text": value} for value in values])
        count = min(count, len(dataset))
        assert dataset.select(range(count)).to_list() == dataset.take(count).to_list()

    @given(texts)
    @settings(max_examples=30, deadline=None)
    def test_map_identity_preserves_rows(self, values):
        dataset = NestedDataset.from_list([{"text": value} for value in values])
        assert dataset.map(lambda row: dict(row)).to_list() == dataset.to_list()
