"""Tests for the parallel execution engine (repro.parallel)."""

import pytest

from repro.core.dataset import NestedDataset
from repro.core.executor import Executor
from repro.ops import load_ops
from repro.parallel import (
    WorkerPool,
    apply_sample_ops,
    get_shared_pool,
    resolve_start_method,
    shutdown_shared_pools,
)
from repro.parallel.worker import chunk_rows, default_chunk_size
from repro.synth import common_crawl_like

PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"clean_links_mapper": {}},
    {"text_length_filter": {"min_len": 50}},
    {"words_num_filter": {"min_num": 10}},
]

FULL_PROCESS = PROCESS + [{"document_deduplicator": {}}]


@pytest.fixture(scope="module")
def corpus():
    return common_crawl_like(num_samples=48, seed=7, duplicate_ratio=0.1)


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    shutdown_shared_pools()


class TestStartMethodResolution:
    def test_preferred_method_honoured_when_available(self):
        assert resolve_start_method("spawn", available=("fork", "spawn")) == "spawn"

    def test_falls_back_when_preferred_unavailable(self):
        # a spawn-only platform (Windows, macOS default) must not crash
        assert resolve_start_method("fork", available=("spawn",)) == "spawn"

    def test_default_prefers_fork(self):
        assert resolve_start_method(available=("spawn", "forkserver", "fork")) == "fork"

    def test_no_method_available_raises(self):
        with pytest.raises(RuntimeError):
            resolve_start_method(available=())


class TestChunking:
    def test_chunk_rows_partitions_in_order(self):
        rows = [{"i": i} for i in range(7)]
        chunks = chunk_rows(rows, 3)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [r["i"] for c in chunks for r in c] == list(range(7))

    def test_chunk_rows_rejects_bad_size(self):
        with pytest.raises(ValueError):
            chunk_rows([{"i": 0}], 0)

    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(100, 4) == 7  # ~4 tasks per worker
        assert default_chunk_size(3, 16) == 1


class TestWorkerPool:
    def test_pool_reuse_across_runs(self, corpus):
        rows = corpus.to_list()
        with WorkerPool(2, ops=load_ops(PROCESS)) as pool:
            pids_before = sorted(pool.worker_pids())
            first, _ = pool.run_sample_pipeline([rows])
            second, _ = pool.run_sample_pipeline([rows])
            pids_after = sorted(pool.worker_pids())
        # the same worker processes served both runs — no fork-per-run
        assert pids_before == pids_after and len(pids_before) == 2
        assert first == second

    def test_chunked_dispatch_preserves_row_order(self, corpus):
        rows = [{"text": f"word {i} " + "stable filler text for the pipeline", "idx": i} for i in range(40)]
        ops = load_ops([{"whitespace_normalization_mapper": {}}])
        serial = apply_sample_ops(ops, rows)
        with WorkerPool(3, ops=ops, chunk_size=4) as pool:
            node_rows, _cpu = pool.run_sample_pipeline([rows])
        assert [r["idx"] for r in node_rows[0]] == [r["idx"] for r in serial]
        assert node_rows[0] == serial

    def test_per_node_cpu_accounting(self, corpus):
        rows = corpus.to_list()
        with WorkerPool(2, ops=load_ops(PROCESS)) as pool:
            node_rows, node_cpu = pool.run_sample_pipeline([rows[:24], rows[24:]])
        assert len(node_rows) == 2 and len(node_cpu) == 2
        assert all(cpu >= 0.0 for cpu in node_cpu)
        assert sum(len(part) for part in node_rows) <= len(rows)

    def test_spawn_fallback_matches_fork_results(self, corpus):
        rows = corpus.to_list()
        serial = apply_sample_ops(load_ops(PROCESS), rows)
        with WorkerPool(2, process_list=PROCESS, start_method="spawn") as pool:
            assert pool.start_method == "spawn"
            # workers re-instantiate the ops from the recipe inside spawn init
            (spawned,), _cpu = pool.run_sample_pipeline([rows])
        assert spawned == serial

    def test_closed_pool_rejects_work(self, corpus):
        pool = WorkerPool(2, ops=load_ops(PROCESS))
        pool.close()
        assert not pool.alive
        with pytest.raises(RuntimeError):
            pool.run_sample_pipeline([corpus.to_list()])

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0, ops=[])


class TestSharedPools:
    def test_same_recipe_and_size_share_one_pool(self):
        first = get_shared_pool(2, PROCESS)
        second = get_shared_pool(2, PROCESS)
        assert first is second
        assert get_shared_pool(3, PROCESS) is not first

    def test_shutdown_clears_and_recreates(self):
        pool = get_shared_pool(2, PROCESS)
        shutdown_shared_pools()
        assert not pool.alive
        fresh = get_shared_pool(2, PROCESS)
        assert fresh is not pool and fresh.alive

    def test_registry_bounded_evicts_least_recently_used(self):
        from repro.parallel.pool import MAX_SHARED_POOLS

        shutdown_shared_pools()
        recipes = [
            [{"whitespace_normalization_mapper": {}}] * (k + 1)
            for k in range(MAX_SHARED_POOLS + 1)
        ]
        pools = [get_shared_pool(1, recipe) for recipe in recipes]
        # the least-recently-used pool was closed to respect the bound …
        assert not pools[0].alive
        assert all(pool.alive for pool in pools[1:])
        # … and asking for it again builds a fresh live pool
        revived = get_shared_pool(1, recipes[0])
        assert revived is not pools[0] and revived.alive

    def test_concurrent_requests_get_one_pool(self):
        # the check-then-create is guarded by a lock: two threads racing on
        # the same key (a threaded server's concurrent submissions) must get
        # the same pool instance, never fork a second worker set
        import threading

        shutdown_shared_pools()
        results: list = []
        barrier = threading.Barrier(2)

        def request() -> None:
            barrier.wait()
            results.append(get_shared_pool(2, PROCESS))

        threads = [threading.Thread(target=request) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 2
        assert results[0] is results[1]
        assert results[0].alive

    def test_supervision_knobs_apply_per_caller(self):
        shutdown_shared_pools()
        first = get_shared_pool(2, PROCESS, task_timeout_s=5.0, max_rebuilds=1)
        assert first.task_timeout_s == 5.0 and first.max_rebuilds == 1
        # a later borrower reconfigures the same pool under its own policy
        second = get_shared_pool(2, PROCESS, task_timeout_s=9.0, rebuild_backoff_s=0.5)
        assert second is first
        assert first.task_timeout_s == 9.0 and first.rebuild_backoff_s == 0.5

    def test_is_shared_pool_tracks_registry_membership(self):
        from repro.parallel import is_shared_pool

        shutdown_shared_pools()
        shared = get_shared_pool(1, PROCESS)
        private = WorkerPool(1, ops=load_ops(PROCESS))
        try:
            assert is_shared_pool(shared)
            assert not is_shared_pool(private)
        finally:
            private.close()


class TestConfigEquivalenceDispatch:
    def test_foreign_instances_resolve_against_residents(self):
        # ops are pure functions of config(): an executor's own instances of
        # the same recipe resolve against a shared pool's residents
        with WorkerPool(2, process_list=PROCESS) as pool:
            for op in load_ops(PROCESS):
                assert pool.holds(op)

    def test_differently_configured_op_does_not_resolve(self):
        with WorkerPool(2, process_list=PROCESS) as pool:
            other = load_ops([{"text_length_filter": {"min_len": 99}}])[0]
            assert not pool.holds(other)

    def test_foreign_instance_dispatch_matches_serial(self, corpus):
        rows = corpus.to_list()
        recipe = [{"whitespace_normalization_mapper": {}}]
        op = load_ops(recipe)[0]
        serial = [op.process(dict(row)) for row in rows]
        with WorkerPool(2, process_list=recipe) as pool:
            foreign = load_ops(recipe)[0]  # fresh instance, same config
            assert foreign is not op
            pooled = pool.map_rows(foreign.process, rows)
            assert pool.last_served_pids  # executed out of process
        assert pooled == serial


class TestExecutorParallel:
    def test_np_serial_equivalence(self, corpus):
        serial = Executor({"process": FULL_PROCESS, "np": 1}).run(corpus)
        with Executor({"process": FULL_PROCESS, "np": 3}) as executor:
            parallel = executor.run(corpus)
            assert executor.last_report["parallel"]["np"] == 3
            assert executor.last_report["parallel"]["start_method"] is not None
        # identical rows in identical order, and identical fingerprints so
        # cache keys agree between serial and parallel execution
        assert parallel.to_list() == serial.to_list()
        assert parallel.fingerprint == serial.fingerprint

    def test_np_equivalence_with_fusion(self, corpus):
        process = FULL_PROCESS[:-1] + [
            {"stopwords_filter": {"min_ratio": 0.0}},
            {"flagged_words_filter": {"max_ratio": 1.0}},
            FULL_PROCESS[-1],
        ]
        serial = Executor({"process": process, "op_fusion": True, "np": 1}).run(corpus)
        with Executor({"process": process, "op_fusion": True, "np": 2}) as executor:
            parallel = executor.run(corpus)
        assert parallel.to_list() == serial.to_list()

    def test_pool_persists_across_executor_runs(self, corpus):
        with Executor({"process": FULL_PROCESS, "np": 2}) as executor:
            executor.run(corpus)
            pool = executor._pool
            assert pool is not None and pool.alive
            pids = sorted(pool.worker_pids())
            executor.run(corpus)
            assert executor._pool is pool
            assert sorted(pool.worker_pids()) == pids

    def test_serial_executor_has_no_pool(self, corpus):
        executor = Executor({"process": FULL_PROCESS})
        executor.run(corpus)
        assert executor._pool is None
        executor.close()


class TestDatasetPoolHandle:
    def test_map_and_filter_accept_pool_handle(self, corpus):
        ops = load_ops(PROCESS)
        mapper, text_filter = ops[0], ops[2]
        with WorkerPool(2, ops=ops) as pool:
            mapped = corpus.map(mapper.process, pool=pool)
            filtered = mapped.filter(text_filter.process, pool=pool)
        serial_mapped = corpus.map(mapper.process)
        assert mapped.to_list() == serial_mapped.to_list()
        assert mapped.fingerprint == serial_mapped.fingerprint
        assert len(filtered) <= len(mapped)

    def test_foreign_function_falls_back_to_serial(self, corpus):
        with WorkerPool(2, ops=load_ops(PROCESS)) as pool:
            # a plain function is not pool-resident: the dataset silently
            # executes it in-process instead of failing
            result = corpus.map(lambda row: dict(row, tagged=True), pool=pool)
        assert all(row["tagged"] for row in result)

    def test_accepts_discriminates_dispatch_intent(self):
        """Approving a method for the wrong intent would run different worker
        code than the serial path runs for the same call."""
        ops = load_ops(PROCESS)
        mapper, text_filter = ops[0], ops[2]
        with WorkerPool(2, ops=ops) as pool:
            assert pool.accepts(text_filter.process, kind="filter")
            # a Filter's stats method is not a boolean keep/drop predicate …
            assert not pool.accepts(text_filter.compute_stats, kind="filter")
            assert not pool.accepts(mapper.process, kind="filter")
            # … and a Filter's boolean predicate is not a row transform
            assert pool.accepts(mapper.process, kind="map")
            assert pool.accepts(text_filter.compute_stats, kind="map")
            assert not pool.accepts(text_filter.process, kind="map")
            # columnar batch methods dispatch via the *_batches kinds only
            assert pool.accepts(mapper.process_batched, kind="map_batches")
            assert pool.accepts(text_filter.compute_stats_batched, kind="map_batches")
            assert not pool.accepts(mapper.process_batched, kind="map")
            assert not pool.accepts(mapper.process, kind="map_batches")
            assert pool.accepts(text_filter.process_batched, kind="filter_batches")
            assert not pool.accepts(mapper.process_batched, kind="filter_batches")
            assert not pool.accepts(mapper.process, kind="map", batched=True)
            assert pool.holds(text_filter) and not pool.holds(object())

    def test_filter_with_stats_method_matches_serial(self, corpus):
        """dataset.filter with a non-predicate method falls back to the serial
        path instead of silently evaluating a different function in the pool."""
        ops = load_ops(PROCESS)
        text_filter = ops[2]
        with WorkerPool(2, ops=ops) as pool:
            pooled = corpus.filter(text_filter.compute_stats, pool=pool)
        serial = corpus.filter(text_filter.compute_stats)
        assert pooled.to_list() == serial.to_list()


class TestBatchedPoolDispatch:
    def test_map_column_batches_matches_serial(self, corpus):
        ops = load_ops(PROCESS)
        mapper = ops[0]
        serial = mapper.run(corpus)
        with WorkerPool(2, ops=ops) as pool:
            pooled = mapper.run(corpus, pool=pool)
            assert pool.last_served_pids  # really executed out-of-process
        assert pooled.to_list() == serial.to_list()
        assert pooled.fingerprint == serial.fingerprint

    def test_filter_column_batches_matches_serial(self, corpus):
        ops = load_ops(PROCESS)
        text_filter = ops[2]
        serial = text_filter.run(corpus)
        with WorkerPool(2, ops=ops) as pool:
            pooled = text_filter.run(corpus, pool=pool)
            assert pool.last_served_pids
        assert pooled.to_list() == serial.to_list()
        assert pooled.fingerprint == serial.fingerprint

    def test_fused_filter_over_resident_members_uses_pool(self, corpus):
        """Regression: a FusedFilter assembled *after* pool construction used
        to fail the identity check in pool.holds() and silently fall back to
        in-process serial execution."""
        from repro.core.fusion import FusedFilter, fuse_operators

        ops = load_ops(
            PROCESS + [{"stopwords_filter": {"min_ratio": 0.0}}, {"flagged_words_filter": {"max_ratio": 1.0}}]
        )
        fused_plan = fuse_operators(ops)
        fused = next(op for op in fused_plan if isinstance(op, FusedFilter))
        serial = fused.run(corpus)
        with WorkerPool(2, ops=ops) as pool:  # pool holds the UNfused seed list
            assert pool.holds(fused)
            pooled = fused.run(corpus, pool=pool)
            assert pool.last_served_pids  # dispatched, not the serial fallback
        assert pooled.to_list() == serial.to_list()
        assert pooled.fingerprint == serial.fingerprint

    def test_fused_filter_per_row_methods_dispatch_too(self, corpus):
        """accepts() approving a fused method must mean row dispatch succeeds."""
        from repro.core.fusion import FusedFilter, fuse_operators

        ops = load_ops(
            PROCESS + [{"stopwords_filter": {"min_ratio": 0.0}}, {"flagged_words_filter": {"max_ratio": 1.0}}]
        )
        fused = next(op for op in fuse_operators(ops) if isinstance(op, FusedFilter))
        with WorkerPool(2, ops=ops) as pool:
            assert pool.accepts(fused.compute_stats, kind="map")
            pooled = corpus.map(fused.compute_stats, pool=pool)
            assert pool.last_served_pids
            assert pool.accepts(fused.process, kind="filter")
            corpus.filter(fused.process, pool=pool)
            assert pool.last_served_pids
        serial = corpus.map(fused.compute_stats)
        assert pooled.to_list() == serial.to_list()

    def test_deduplicator_hash_stage_uses_pool(self, corpus):
        ops = load_ops([{"document_minhash_deduplicator": {}}])
        dedup = ops[0]
        serial = dedup.run(corpus)
        with WorkerPool(2, ops=ops) as pool:
            pooled = dedup.run(corpus, pool=pool)
            assert pool.last_served_pids  # hashing ran in the workers
        assert pooled.to_list() == serial.to_list()
        assert pooled.fingerprint == serial.fingerprint

    def test_fused_filter_with_foreign_members_not_held(self):
        from repro.core.fusion import FusedFilter

        resident = load_ops(PROCESS)
        foreign = load_ops([{"stopwords_filter": {}}, {"flagged_words_filter": {}}])
        with WorkerPool(2, ops=resident) as pool:
            assert not pool.holds(FusedFilter(foreign))

    def test_shared_pool_registers_post_fusion_plan(self):
        process = PROCESS + [
            {"stopwords_filter": {"min_ratio": 0.0}},
            {"flagged_words_filter": {"max_ratio": 1.0}},
        ]
        fused_pool = get_shared_pool(2, process, op_fusion=True)
        plain_pool = get_shared_pool(2, process, op_fusion=False)
        assert fused_pool is not plain_pool
        assert get_shared_pool(2, process, op_fusion=True) is fused_pool


def test_preload_assets_is_idempotent():
    from repro.ops.common import preload_assets

    preload_assets()
    preload_assets()


class TestApplySampleOps:
    def test_rejects_dataset_level_ops(self):
        with pytest.raises(TypeError):
            apply_sample_ops(load_ops([{"document_deduplicator": {}}]), [{"text": "x"}])

    def test_filter_drops_rows_immediately(self):
        ops = load_ops([{"text_length_filter": {"min_len": 10}}])
        rows = [{"text": "tiny"}, {"text": "long enough to survive the filter"}]
        surviving = apply_sample_ops(ops, rows)
        assert len(surviving) == 1 and "survive" in surviving[0]["text"]
