"""Tests for the text-editing mappers (LaTeX, tables, long words, repetition, augmentation...)."""

import pytest

from repro.ops.mappers.expand_macro_mapper import ExpandMacroMapper
from repro.ops.mappers.lowercase_mapper import LowercaseMapper
from repro.ops.mappers.nfkc_normalization_mapper import NfkcNormalizationMapper
from repro.ops.mappers.remove_bibliography_mapper import RemoveBibliographyMapper
from repro.ops.mappers.remove_comments_mapper import RemoveCommentsMapper
from repro.ops.mappers.remove_duplicate_lines_mapper import RemoveDuplicateLinesMapper
from repro.ops.mappers.remove_header_mapper import RemoveHeaderMapper
from repro.ops.mappers.remove_long_words_mapper import RemoveLongWordsMapper
from repro.ops.mappers.remove_repeat_sentences_mapper import RemoveRepeatSentencesMapper
from repro.ops.mappers.remove_specific_chars_mapper import RemoveSpecificCharsMapper
from repro.ops.mappers.remove_table_text_mapper import RemoveTableTextMapper
from repro.ops.mappers.remove_words_with_incorrect_substrings_mapper import (
    RemoveWordsWithIncorrectSubstringsMapper,
)
from repro.ops.mappers.replace_content_mapper import ReplaceContentMapper
from repro.ops.mappers.sentence_split_mapper import SentenceSplitMapper
from repro.ops.mappers.text_augmentation_mapper import TextAugmentationMapper
from repro.ops.mappers.truncate_text_mapper import TruncateTextMapper


def text_of(mapper, text):
    return mapper.process({"text": text})["text"]


LATEX = (
    "\\documentclass{article}\n"
    "\\newcommand{\\sys}{JuicyNet}\n"
    "% a review comment\n"
    "\\section{Intro}\n"
    "The \\sys system works. % inline note\n"
    "\\begin{thebibliography}{9}\\bibitem{a} Ref.\\end{thebibliography}\n"
)


class TestLatexMappers:
    def test_remove_header_keeps_from_first_section(self):
        assert text_of(RemoveHeaderMapper(), LATEX).startswith("\\section{Intro}")

    def test_remove_header_drops_headless_documents(self):
        assert text_of(RemoveHeaderMapper(), "\\documentclass{article}\nno sections") == ""

    def test_remove_header_keeps_plain_text(self):
        assert text_of(RemoveHeaderMapper(), "just plain text") == "just plain text"

    def test_remove_comments_whole_line_and_inline(self):
        cleaned = text_of(RemoveCommentsMapper(), LATEX)
        assert "review comment" not in cleaned and "inline note" not in cleaned

    def test_remove_comments_inline_only_preserves_line_structure(self):
        cleaned = text_of(RemoveCommentsMapper(whole_line=False), "% full\nkeep % drop")
        # inline mode truncates at '%' but keeps the (now empty) line in place
        assert cleaned.splitlines() == ["", "keep "]

    def test_expand_macro(self):
        expanded = text_of(ExpandMacroMapper(), LATEX)
        assert "JuicyNet system" in expanded
        assert "\\newcommand" not in expanded

    def test_expand_macro_ignores_macros_with_arguments(self):
        text = "\\newcommand{\\pair}[2]{(#1,#2)} use \\pair{a}{b}"
        assert "\\pair{a}{b}" in text_of(ExpandMacroMapper(), text)

    def test_remove_bibliography(self):
        assert "bibitem" not in text_of(RemoveBibliographyMapper(), LATEX)


class TestWordAndLineMappers:
    def test_remove_long_words(self):
        text = "short " + "x" * 60 + " fine"
        assert text_of(RemoveLongWordsMapper(max_len=30), text).split() == ["short", "fine"]

    def test_remove_short_words(self):
        assert text_of(RemoveLongWordsMapper(min_len=3), "a an the word") == "the word"

    def test_remove_specific_chars(self):
        assert text_of(RemoveSpecificCharsMapper(chars_to_remove="◆●"), "◆a●b") == "ab"

    def test_remove_specific_chars_empty_config(self):
        assert text_of(RemoveSpecificCharsMapper(chars_to_remove=""), "◆a") == "◆a"

    def test_remove_incorrect_substrings(self):
        text = "read this href=page.html now"
        assert "href" not in text_of(RemoveWordsWithIncorrectSubstringsMapper(), text)

    def test_remove_table_text(self):
        table = "intro line\ncol1\tcol2\tcol3\n1\t2\t3\n4\t5\t6\nclosing line"
        cleaned = text_of(RemoveTableTextMapper(), table)
        assert "col1" not in cleaned and "intro line" in cleaned and "closing line" in cleaned

    def test_single_aligned_line_kept(self):
        text = "before\na\tb\nafter"
        assert "a\tb" in text_of(RemoveTableTextMapper(), text)

    def test_remove_duplicate_lines(self):
        text = "a unique first line here\nsame long repeated line content\nsame long repeated line content"
        assert text_of(RemoveDuplicateLinesMapper(), text).count("repeated") == 1

    def test_remove_duplicate_lines_keeps_short_lines(self):
        text = "-\n-\n-"
        assert text_of(RemoveDuplicateLinesMapper(min_line_length=5), text) == text

    def test_remove_repeat_sentences(self):
        text = "This sentence repeats itself badly. This sentence repeats itself badly. Another one."
        assert text_of(RemoveRepeatSentencesMapper(), text).count("repeats") == 1


class TestMiscMappers:
    def test_sentence_split(self):
        assert text_of(SentenceSplitMapper(), "One. Two.") == "One.\nTwo."

    def test_lowercase(self):
        assert text_of(LowercaseMapper(), "MiXeD") == "mixed"

    def test_nfkc_fullwidth_to_ascii(self):
        assert text_of(NfkcNormalizationMapper(), "ＡＢＣ１２３") == "ABC123"

    def test_replace_content_single_pattern(self):
        assert text_of(ReplaceContentMapper(pattern=r"\d+", repl="N"), "a1 b22") == "aN bN"

    def test_replace_content_multiple_patterns(self):
        mapper = ReplaceContentMapper(pattern=[r"foo", r"bar"], repl="_")
        assert text_of(mapper, "foo bar baz") == "_ _ baz"

    def test_truncate_by_words(self):
        assert text_of(TruncateTextMapper(max_words=2), "a b c d") == "a b"

    def test_truncate_by_chars(self):
        assert text_of(TruncateTextMapper(max_chars=3), "abcdef") == "abc"

    def test_truncate_requires_a_limit(self):
        with pytest.raises(ValueError):
            TruncateTextMapper()

    def test_augmentation_is_deterministic(self):
        mapper = TextAugmentationMapper(aug_method="swap", aug_ratio=0.5, seed=1)
        text = "one two three four five six"
        assert text_of(mapper, text) == text_of(mapper, text)

    def test_augmentation_delete_never_empties(self):
        mapper = TextAugmentationMapper(aug_method="delete", aug_ratio=1.0, seed=0)
        assert text_of(mapper, "a b c") != ""

    def test_augmentation_duplicate_grows_text(self):
        mapper = TextAugmentationMapper(aug_method="duplicate", aug_ratio=1.0, seed=0)
        assert len(text_of(mapper, "a b c").split()) == 6

    def test_augmentation_invalid_method(self):
        with pytest.raises(ValueError):
            TextAugmentationMapper(aug_method="backtranslate")
