"""Tier-1 gate: the shipped operator pool must satisfy every lint contract.

Any new operator (or edit to an existing one) that breaks a contract —
impure process paths, config()/PARAM_SPECS drift, unpicklable state,
registry hygiene — fails this test with the linter's own report, the same
output ``repro lint`` and ``make check`` produce.
"""

from repro.tools.lint import RULES, default_lint_paths, lint_paths, render_text


class TestOperatorPoolIsLintClean:
    def test_default_paths_cover_the_ops_and_service_packages(self):
        paths = default_lint_paths()
        assert [path.name for path in paths] == ["ops", "service"]

    def test_zero_unsuppressed_violations(self):
        result = lint_paths(default_lint_paths())
        assert result.files_checked >= 50, "lint walked suspiciously few op modules"
        assert result.violations == [], "\n" + render_text(result)
        assert result.exit_code == 0

    def test_all_rules_were_active(self):
        result = lint_paths(default_lint_paths())
        assert sorted(result.rule_ids) == sorted(RULES)
