"""Tests for the exact-hash, MinHash-LSH and SimHash deduplicators."""

import pytest

from repro.core.dataset import NestedDataset
from repro.core.sample import HashKeys
from repro.core.tracer import Tracer
from repro.ops.deduplicators.document_deduplicator import DocumentDeduplicator
from repro.ops.deduplicators.document_minhash_deduplicator import DocumentMinhashDeduplicator
from repro.ops.deduplicators.document_simhash_deduplicator import (
    DocumentSimhashDeduplicator,
    hamming_distance,
)

BASE = (
    "The data processing system cleans and filters the large training corpus "
    "before the language model learns from it every single day."
)
NEAR = BASE.replace("every single day", "every single week")
OTHER = (
    "Completely different content about music history and the cultural impact "
    "of classical composers across several centuries of European art."
)


def dataset(rows):
    return NestedDataset.from_list([{"text": text} for text in rows])


class TestExactDeduplicator:
    def test_removes_exact_duplicates(self):
        out = DocumentDeduplicator().run(dataset([BASE, OTHER, BASE, BASE]))
        assert len(out) == 2

    def test_keeps_first_occurrence_order(self):
        out = DocumentDeduplicator().run(dataset([BASE, OTHER, BASE]))
        assert out[0]["text"] == BASE and out[1]["text"] == OTHER

    def test_case_sensitive_by_default(self):
        out = DocumentDeduplicator().run(dataset([BASE, BASE.upper()]))
        assert len(out) == 2

    def test_lowercase_option_merges_case_variants(self):
        out = DocumentDeduplicator(lowercase=True).run(dataset([BASE, BASE.upper()]))
        assert len(out) == 1

    def test_ignore_non_character_option(self):
        out = DocumentDeduplicator(ignore_non_character=True).run(
            dataset([BASE, BASE.replace(" ", "  ") + "!!!"])
        )
        assert len(out) == 1

    def test_hash_column_removed_from_output(self):
        out = DocumentDeduplicator().run(dataset([BASE, OTHER]))
        assert HashKeys.hash not in out.column_names

    def test_invalid_hash_func(self):
        with pytest.raises(ValueError):
            DocumentDeduplicator(hash_func="crc32")

    def test_tracer_receives_duplicate_pairs(self):
        tracer = Tracer()
        DocumentDeduplicator().run(dataset([BASE, BASE]), tracer=tracer)
        assert tracer.records[0].examples[0]["original"] == BASE


class TestMinhashDeduplicator:
    def test_near_duplicates_removed(self):
        out = DocumentMinhashDeduplicator(jaccard_threshold=0.6).run(dataset([BASE, NEAR, OTHER]))
        assert len(out) == 2
        texts = [row["text"] for row in out]
        assert OTHER in texts

    def test_distinct_documents_kept(self):
        out = DocumentMinhashDeduplicator().run(dataset([BASE, OTHER]))
        assert len(out) == 2

    def test_exact_duplicates_removed(self):
        out = DocumentMinhashDeduplicator().run(dataset([BASE, BASE, BASE]))
        assert len(out) == 1

    def test_signature_width_matches_permutations(self):
        dedup = DocumentMinhashDeduplicator(num_permutations=32, num_bands=8)
        hashed = dedup.compute_hash({"text": BASE})
        assert len(hashed[HashKeys.minhash]) == 32

    def test_bands_must_divide_permutations(self):
        with pytest.raises(ValueError):
            DocumentMinhashDeduplicator(num_permutations=64, num_bands=10)

    def test_empty_text_does_not_crash(self):
        out = DocumentMinhashDeduplicator().run(dataset(["", BASE]))
        assert len(out) >= 1


class TestSimhashDeduplicator:
    def test_hamming_distance(self):
        assert hamming_distance(0b1010, 0b0011) == 2

    def test_near_duplicates_removed(self):
        out = DocumentSimhashDeduplicator(hamming_threshold=8).run(dataset([BASE, NEAR, OTHER]))
        assert len(out) == 2

    def test_distinct_documents_kept(self):
        out = DocumentSimhashDeduplicator(hamming_threshold=3).run(dataset([BASE, OTHER]))
        assert len(out) == 2

    def test_fingerprints_of_identical_texts_match(self):
        dedup = DocumentSimhashDeduplicator()
        fp1 = dedup.compute_hash({"text": BASE})[HashKeys.simhash]
        fp2 = dedup.compute_hash({"text": BASE})[HashKeys.simhash]
        assert fp1 == fp2

    def test_similar_texts_have_close_fingerprints(self):
        dedup = DocumentSimhashDeduplicator()
        fp_base = dedup.compute_hash({"text": BASE})[HashKeys.simhash]
        fp_near = dedup.compute_hash({"text": NEAR})[HashKeys.simhash]
        fp_other = dedup.compute_hash({"text": OTHER})[HashKeys.simhash]
        assert hamming_distance(fp_base, fp_near) < hamming_distance(fp_base, fp_other)

    def test_num_blocks_adjusted_above_threshold(self):
        dedup = DocumentSimhashDeduplicator(hamming_threshold=5, num_blocks=4)
        assert dedup.num_blocks > 5
