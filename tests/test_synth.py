"""Tests for the synthetic corpus generators and noise injection."""

import pytest

from repro.core.sample import Fields
from repro.ops.common.flagged_words import FLAGGED_WORDS_EN
from repro.synth import (
    DocumentGenerator,
    NoiseInjector,
    arxiv_like,
    chinese_web_like,
    code_like,
    common_crawl_like,
    instruction_dataset,
    make_corpus,
    stackexchange_like,
    wikipedia_like,
)


class TestDocumentGenerator:
    def test_deterministic_given_seed(self):
        assert DocumentGenerator(1).document() == DocumentGenerator(1).document()

    def test_different_seeds_differ(self):
        assert DocumentGenerator(1).document() != DocumentGenerator(2).document()

    def test_sentence_ends_with_period(self):
        assert DocumentGenerator(0).sentence().endswith(".")

    def test_document_has_paragraphs(self):
        assert "\n\n" in DocumentGenerator(0).document(num_paragraphs=3)

    def test_cjk_document_is_cjk(self):
        from repro.ops.common.helper_funcs import cjk_ratio

        assert cjk_ratio(DocumentGenerator(0).cjk_document()) > 0.8

    def test_code_document_looks_like_python(self):
        code = DocumentGenerator(0).code_document()
        assert "def " in code and "return" in code


class TestNoiseInjector:
    def test_add_html_wraps_text(self):
        assert "<html>" in NoiseInjector(0).add_html("hello")

    def test_add_links_and_emails(self):
        noisy = NoiseInjector(0).add_links_and_emails("text")
        assert "http" in noisy and "@" in noisy

    def test_add_flagged_words(self):
        noisy = NoiseInjector(0).add_flagged_words("clean words only here now")
        assert any(word in noisy for word in FLAGGED_WORDS_EN)

    def test_gibberish_has_no_common_words(self):
        assert "the" not in NoiseInjector(0).gibberish().split()

    def test_truncate_shortens(self):
        assert len(NoiseInjector(0).truncate("x" * 500)) <= 30

    def test_corrupt_changes_text(self):
        clean = DocumentGenerator(0).document()
        assert NoiseInjector(0).corrupt(clean, kinds=["links"]) != clean


class TestCorpora:
    def test_sizes_and_sources(self):
        corpus = common_crawl_like(num_samples=30, seed=0, duplicate_ratio=0.1)
        assert len(corpus) == 33  # 30 + 10% duplicates
        assert all(row[Fields.meta]["source"] == "common_crawl" for row in corpus)

    def test_quality_knob_controls_clean_fraction(self):
        dirty = common_crawl_like(num_samples=60, seed=1, quality=0.1, duplicate_ratio=0.0)
        clean = common_crawl_like(num_samples=60, seed=1, quality=0.9, duplicate_ratio=0.0)
        dirty_clean_count = sum(1 for row in dirty if row[Fields.meta]["clean"])
        clean_clean_count = sum(1 for row in clean if row[Fields.meta]["clean"])
        assert clean_clean_count > dirty_clean_count

    def test_duplicates_injected(self):
        corpus = common_crawl_like(num_samples=40, seed=2, duplicate_ratio=0.25)
        texts = [row[Fields.text] for row in corpus]
        assert len(set(texts)) < len(texts)

    def test_wikipedia_is_all_clean(self):
        assert all(row[Fields.meta]["clean"] for row in wikipedia_like(num_samples=20, seed=3))

    def test_arxiv_contains_latex(self):
        assert any("\\documentclass" in row[Fields.text] for row in arxiv_like(20, seed=4))

    def test_code_has_star_metadata_and_suffix(self):
        corpus = code_like(num_samples=10, seed=5)
        assert all(isinstance(row[Fields.meta]["stars"], int) for row in corpus)
        assert all(row[Fields.suffix] == ".py" for row in corpus)

    def test_stackexchange_has_question_answer(self):
        assert any("Q:" in row[Fields.text] and "A:" in row[Fields.text]
                   for row in stackexchange_like(10, seed=6))

    def test_chinese_web_language_tag(self):
        assert all(row[Fields.meta]["language"] == "zh" for row in chinese_web_like(10, seed=7))

    def test_instruction_dataset_fields_and_tags(self):
        dataset = instruction_dataset(num_samples=15, seed=8, usage="CFT", language="en")
        row = dataset[0]
        assert {"instruction", "input", "output"} <= set(row)
        assert row[Fields.meta]["usage"] == "CFT"
        assert row[Fields.meta]["language"] == "EN"

    def test_make_corpus_dispatch(self):
        assert len(make_corpus("wikipedia", num_samples=5, seed=9)) == 5

    def test_make_corpus_unknown_name(self):
        with pytest.raises(ValueError):
            make_corpus("pile_of_nothing")

    def test_corpora_deterministic(self):
        first = common_crawl_like(num_samples=15, seed=11)
        second = common_crawl_like(num_samples=15, seed=11)
        assert first.to_list() == second.to_list()
