"""Tests for the tracer, exporter and resource monitor."""

import json

from repro.core.dataset import NestedDataset
from repro.core.exporter import Exporter
from repro.core.monitor import ResourceMonitor, time_call
from repro.core.sample import Fields
from repro.core.tracer import Tracer


def before_after():
    before = NestedDataset.from_list([{"text": "a b c"}, {"text": "keep me"}, {"text": "drop"}])
    after = NestedDataset.from_list([{"text": "A B C"}, {"text": "keep me"}, {"text": "drop"}])
    return before, after


class TestTracer:
    def test_trace_mapper_records_changed_samples_only(self):
        tracer = Tracer()
        before, after = before_after()
        record = tracer.trace_mapper("upper", before, after)
        assert record.op_type == "mapper"
        assert len(record.examples) == 1
        assert record.examples[0]["before"] == "a b c"

    def test_trace_filter_records_discarded(self):
        tracer = Tracer()
        before, _ = before_after()
        kept = before.select([0, 1])
        record = tracer.trace_filter("len", before, kept)
        assert record.removed == 1
        assert record.examples[0]["discarded"] == "drop"

    def test_trace_deduplicator_records_pairs(self):
        tracer = Tracer()
        record = tracer.trace_deduplicator("dedup", 10, 8, [({"text": "a"}, {"text": "a"})])
        assert record.removed == 2
        assert record.examples[0]["original"] == "a"

    def test_show_num_bounds_examples(self):
        tracer = Tracer(show_num=1)
        before = NestedDataset.from_list([{"text": str(i)} for i in range(5)])
        after = NestedDataset.from_list([{"text": str(i) + "!"} for i in range(5)])
        record = tracer.trace_mapper("op", before, after)
        assert len(record.examples) == 1

    def test_trace_files_written(self, tmp_path):
        tracer = Tracer(trace_dir=tmp_path)
        before, after = before_after()
        tracer.trace_mapper("upper", before, after)
        files = list(tmp_path.glob("trace-*.jsonl"))
        assert len(files) == 1
        header = json.loads(files[0].read_text().splitlines()[0])
        assert header["op_name"] == "upper"

    def test_summary_in_execution_order(self):
        tracer = Tracer()
        before, after = before_after()
        tracer.trace_mapper("first", before, after)
        tracer.trace_filter("second", before, before.select([0]))
        assert [entry["op_name"] for entry in tracer.summary()] == ["first", "second"]


class TestExporter:
    def dataset(self):
        return NestedDataset.from_list(
            [{"text": "hello", Fields.stats: {"len": 5}, "meta": {"s": "x"}}]
        )

    def test_export_jsonl_strips_stats(self, tmp_path):
        path = Exporter(tmp_path / "out.jsonl").export(self.dataset())
        row = json.loads(path.read_text().splitlines()[0])
        assert row["text"] == "hello"
        assert Fields.stats not in row

    def test_export_jsonl_keep_stats(self, tmp_path):
        path = Exporter(tmp_path / "out.jsonl", keep_stats=True).export(self.dataset())
        row = json.loads(path.read_text().splitlines()[0])
        assert row[Fields.stats] == {"len": 5}

    def test_export_json(self, tmp_path):
        path = Exporter(tmp_path / "out.json").export(self.dataset())
        assert json.loads(path.read_text())[0]["text"] == "hello"

    def test_export_txt(self, tmp_path):
        path = Exporter(tmp_path / "out.txt").export(self.dataset())
        assert path.read_text().strip() == "hello"

    def test_unknown_format_raises(self, tmp_path):
        import pytest

        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            Exporter(tmp_path / "out.parquet", export_format="parquet")

    def test_format_inferred_from_suffix(self, tmp_path):
        exporter = Exporter(tmp_path / "data.json")
        assert exporter.export_format == "json"


class TestResourceMonitor:
    def test_reports_time_and_memory(self):
        with ResourceMonitor(trace_memory=True) as monitor:
            _ = [list(range(1000)) for _ in range(100)]
        report = monitor.report
        assert report.wall_time_s > 0
        assert report.peak_python_mb > 0
        assert report.max_rss_mb > 0

    def test_memory_tracing_off_by_default(self):
        with ResourceMonitor() as monitor:
            _ = [list(range(1000)) for _ in range(50)]
        assert monitor.report.peak_python_mb == 0.0

    def test_as_dict_keys(self):
        with ResourceMonitor() as monitor:
            pass
        assert set(monitor.report.as_dict()) == {
            "wall_time_s",
            "peak_python_mb",
            "current_python_mb",
            "max_rss_mb",
        }

    def test_time_call_returns_result(self):
        elapsed, result = time_call(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0
