"""Tests for the shared text helpers (tokenisation, n-grams, language detection, perplexity)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops.common.helper_funcs import (
    cjk_ratio,
    get_char_ngrams,
    get_ngrams,
    get_words_from_text,
    ngram_repetition_ratio,
    split_lines,
    split_paragraphs,
    split_sentences,
    unique_ratio,
    words_refinement,
)
from repro.ops.common.lang_detect import detect_language
from repro.ops.common.special_characters import is_special_character, special_character_ratio
from repro.ops.common.unigram_lm import perplexity


class TestTokenization:
    def test_basic_words(self):
        assert get_words_from_text("Hello, world!") == ["Hello", ",", "world", "!"]

    def test_lowercase_option(self):
        assert get_words_from_text("ABC", lowercase=True) == ["abc"]

    def test_cjk_split_to_characters(self):
        assert get_words_from_text("数据处理") == ["数", "据", "处", "理"]

    def test_refinement_strips_punct_and_empties(self):
        assert words_refinement(["Hello,", "!", " world "]) == ["hello", "world"]

    def test_refinement_keep_case(self):
        assert words_refinement(["Hello"], lower_case=False) == ["Hello"]

    def test_refinement_words_aug_merges_single_chars(self):
        assert words_refinement(["数", "据", "model"], use_words_aug=True) == ["数据", "model"]


class TestSplitting:
    def test_sentences(self):
        assert split_sentences("One. Two! Three?") == ["One.", "Two!", "Three?"]

    def test_sentences_cjk_punctuation(self):
        assert len(split_sentences("第一句。 第二句！")) == 2

    def test_paragraphs(self):
        assert split_paragraphs("a\n\nb\n\n\nc") == ["a", "b", "c"]

    def test_lines_preserved(self):
        assert split_lines("a\n\nb") == ["a", "", "b"]


class TestNgrams:
    def test_word_ngrams(self):
        assert get_ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_ngrams_too_short(self):
        assert get_ngrams(["a"], 2) == []

    def test_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            get_ngrams(["a"], 0)

    def test_char_ngrams(self):
        assert get_char_ngrams("abcd", 2) == ["ab", "bc", "cd"]

    def test_repetition_ratio_unique(self):
        assert ngram_repetition_ratio(list("abcdefgh"), 2) == 0.0

    def test_repetition_ratio_repeated(self):
        assert ngram_repetition_ratio(list("ababab"), 2) > 0.5

    def test_unique_ratio(self):
        assert unique_ratio(["a", "a", "b", "c"]) == 0.75
        assert unique_ratio([]) == 0.0


class TestSpecialCharacters:
    def test_letters_are_not_special(self):
        assert not is_special_character("a")

    def test_symbols_are_special(self):
        assert is_special_character("#")
        assert is_special_character("🙂")

    def test_ratio(self):
        assert special_character_ratio("ab##") == 0.5
        assert special_character_ratio("") == 0.0


class TestLanguageDetection:
    def test_english(self):
        lang, score = detect_language("This is a simple sentence with the usual words in it.")
        assert lang == "en"
        assert score > 0.4

    def test_chinese(self):
        lang, score = detect_language("这是一个关于数据处理的中文句子，我们的系统可以处理它。")
        assert lang == "zh"
        assert score > 0.4

    def test_gibberish_is_other_or_low_score(self):
        lang, score = detect_language("@@@@ #### $$$$ %%%%")
        assert lang == "other" or score < 0.2

    def test_empty(self):
        assert detect_language("") == ("other", 0.0)

    def test_cjk_ratio(self):
        assert cjk_ratio("ab数据") == 0.5


class TestPerplexity:
    def test_natural_text_lower_than_gibberish(self):
        natural = "the people of the world know that time and work make a good life"
        gibberish = "qzx vbnm plk jhg wrt zzz qqq xxp mnb vvv"
        assert perplexity(natural) < perplexity(gibberish)

    def test_empty_text_zero(self):
        assert perplexity("") == 0.0

    def test_positive_for_any_text(self):
        assert perplexity("hello") > 0


class TestProperties:
    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_refinement_output_is_lowercase_and_nonempty_tokens(self, text):
        refined = words_refinement(get_words_from_text(text))
        assert all(token == token.lower() and token for token in refined)

    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_special_character_ratio_in_unit_interval(self, text):
        assert 0.0 <= special_character_ratio(text) <= 1.0

    @given(st.lists(st.sampled_from("abcd"), max_size=60), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_repetition_ratio_in_unit_interval(self, items, n):
        assert 0.0 <= ngram_repetition_ratio(items, n) <= 1.0
