"""Tests for semantic/metadata filters (language, flagged words, stopwords, perplexity, fields...)."""

from repro.core.dataset import NestedDataset
from repro.core.sample import Fields, StatsKeys
from repro.ops.filters.email_count_filter import EmailCountFilter
from repro.ops.filters.flagged_words_filter import FlaggedWordsFilter
from repro.ops.filters.language_id_score_filter import LanguageIdScoreFilter
from repro.ops.filters.perplexity_filter import PerplexityFilter
from repro.ops.filters.specified_field_filter import SpecifiedFieldFilter
from repro.ops.filters.specified_numeric_field_filter import SpecifiedNumericFieldFilter
from repro.ops.filters.stopwords_filter import StopwordsFilter
from repro.ops.filters.suffix_filter import SuffixFilter
from repro.ops.filters.text_action_filter import TextActionFilter
from repro.ops.filters.url_ratio_filter import UrlRatioFilter


def keep(filter_op, sample):
    if isinstance(sample, str):
        sample = {"text": sample}
    return filter_op.process(filter_op.compute_stats(sample))


ENGLISH = "This is a perfectly normal English sentence that people would write about their life."
CHINESE = "这是一个关于数据处理系统的中文句子，我们的模型可以理解它的内容。"


class TestLanguageFilter:
    def test_keeps_matching_language(self):
        assert keep(LanguageIdScoreFilter(lang="en", min_score=0.2), ENGLISH)

    def test_drops_other_language(self):
        assert not keep(LanguageIdScoreFilter(lang="en", min_score=0.2), CHINESE)

    def test_accepts_list_of_languages(self):
        assert keep(LanguageIdScoreFilter(lang=["en", "zh"], min_score=0.2), CHINESE)

    def test_empty_lang_only_checks_score(self):
        assert keep(LanguageIdScoreFilter(lang="", min_score=0.1), ENGLISH)

    def test_stats_record_lang_and_score(self):
        filter_op = LanguageIdScoreFilter()
        stats = filter_op.compute_stats({"text": ENGLISH})[Fields.stats]
        assert stats[StatsKeys.lang] == "en"
        assert 0.0 <= stats[StatsKeys.lang_score] <= 1.0


class TestFlaggedAndStopwords:
    def test_flagged_words_dropped(self):
        toxic = "this text contains badword and toxicword and flaggedterm repeatedly badword"
        assert not keep(FlaggedWordsFilter(max_ratio=0.05), toxic)

    def test_clean_text_kept(self):
        assert keep(FlaggedWordsFilter(max_ratio=0.05), ENGLISH)

    def test_custom_flagged_list(self):
        assert not keep(FlaggedWordsFilter(max_ratio=0.0, flagged_words=["data"]), "data driven")

    def test_stopwords_ratio_keeps_prose(self):
        assert keep(StopwordsFilter(min_ratio=0.2), ENGLISH)

    def test_stopwords_ratio_drops_keyword_lists(self):
        assert not keep(StopwordsFilter(min_ratio=0.2), "keyword stuffing seo marketing click buy")


class TestPerplexityFilter:
    def test_natural_text_kept(self):
        assert keep(PerplexityFilter(max_ppl=5000), ENGLISH)

    def test_gibberish_dropped(self):
        assert not keep(PerplexityFilter(max_ppl=2000), "zqx wvb nmp qqq zzz xxw vvb mnk")

    def test_min_ppl_bound(self):
        assert not keep(PerplexityFilter(min_ppl=1e9), ENGLISH)


class TestFieldFilters:
    def test_specified_field_match(self):
        sample = {"text": "x", "meta": {"language": "EN"}}
        assert keep(SpecifiedFieldFilter(field_key="meta.language", target_values=["EN"]), sample)

    def test_specified_field_mismatch(self):
        sample = {"text": "x", "meta": {"language": "ZH"}}
        assert not keep(SpecifiedFieldFilter(field_key="meta.language", target_values=["EN"]), sample)

    def test_specified_field_missing_value_fails(self):
        assert not keep(SpecifiedFieldFilter(field_key="meta.tag", target_values=["a"]), {"text": "x"})

    def test_specified_field_missing_leaf_filters_not_raises(self):
        sample = {"text": "x", "meta": {"language": "EN"}}
        assert not keep(SpecifiedFieldFilter(field_key="meta.tag", target_values=["a"]), sample)

    def test_specified_field_missing_intermediate_filters(self):
        sample = {"text": "x", "meta": {"language": "EN"}}
        assert not keep(SpecifiedFieldFilter(field_key="info.tag", target_values=["a"]), sample)

    def test_specified_field_non_dict_intermediate_filters(self):
        sample = {"text": "x", "meta": "not-a-dict"}
        assert not keep(SpecifiedFieldFilter(field_key="meta.tag", target_values=["a"]), sample)

    def test_specified_field_present_none_matches_none_target(self):
        sample = {"text": "x", "meta": {"tag": None}}
        assert keep(SpecifiedFieldFilter(field_key="meta.tag", target_values=[None]), sample)
        assert not keep(SpecifiedFieldFilter(field_key="meta.other", target_values=[None]), sample)

    def test_specified_field_list_value_requires_all(self):
        sample = {"text": "x", "meta": {"tags": ["a", "b"]}}
        assert keep(SpecifiedFieldFilter(field_key="meta.tags", target_values=["a", "b", "c"]), sample)
        assert not keep(SpecifiedFieldFilter(field_key="meta.tags", target_values=["a"]), sample)

    def test_specified_field_no_config_keeps_all(self):
        assert keep(SpecifiedFieldFilter(), {"text": "x"})

    def test_numeric_field_range(self):
        sample = {"text": "x", "meta": {"stars": 1500}}
        assert keep(SpecifiedNumericFieldFilter(field_key="meta.stars", min_value=1000), sample)
        assert not keep(SpecifiedNumericFieldFilter(field_key="meta.stars", min_value=2000), sample)

    def test_numeric_field_accepts_numeric_strings(self):
        sample = {"text": "x", "meta": {"score": "3.5"}}
        assert keep(SpecifiedNumericFieldFilter(field_key="meta.score", min_value=3), sample)

    def test_numeric_field_non_numeric_fails(self):
        sample = {"text": "x", "meta": {"score": "n/a"}}
        assert not keep(SpecifiedNumericFieldFilter(field_key="meta.score", min_value=0), sample)

    def test_numeric_field_missing_leaf_filters_not_raises(self):
        sample = {"text": "x", "meta": {"stars": 5}}
        assert not keep(SpecifiedNumericFieldFilter(field_key="meta.score", min_value=0), sample)

    def test_numeric_field_non_dict_intermediate_filters(self):
        sample = {"text": "x", "meta": 12}
        assert not keep(SpecifiedNumericFieldFilter(field_key="meta.score", min_value=0), sample)

    def test_suffix_filter(self):
        assert keep(SuffixFilter(suffixes=[".py"]), {"text": "x", Fields.suffix: ".py"})
        assert not keep(SuffixFilter(suffixes=[".py"]), {"text": "x", Fields.suffix: ".cpp"})

    def test_suffix_filter_accepts_names_without_dot(self):
        assert keep(SuffixFilter(suffixes=["py"]), {"text": "x", Fields.suffix: ".py"})

    def test_suffix_filter_empty_allowlist_keeps_all(self):
        assert keep(SuffixFilter(), {"text": "x"})


class TestContentFilters:
    def test_email_count(self):
        many = "a@b.com c@d.com e@f.com g@h.com"
        assert not keep(EmailCountFilter(max_count=2), many)
        assert keep(EmailCountFilter(max_count=2), "only a@b.com here")

    def test_url_ratio(self):
        linky = "https://a.com https://b.com https://c.com text"
        assert not keep(UrlRatioFilter(max_ratio=0.3), linky)
        assert keep(UrlRatioFilter(max_ratio=0.3), "mostly text with one https://a.com link in it")

    def test_text_action_requires_verbs(self):
        assert keep(TextActionFilter(), "Summarize the following paragraph for me")
        assert not keep(TextActionFilter(), "apple banana orange")


class TestFilterRunOnDataset:
    def test_run_filters_dataset_and_writes_stats(self):
        from repro.ops.filters.text_length_filter import TextLengthFilter

        dataset = NestedDataset.from_list([{"text": ENGLISH}, {"text": "zz"}])
        out = TextLengthFilter(min_len=10).run(dataset)
        assert len(out) == 1
        assert out[0][Fields.stats][StatsKeys.text_len] == len(ENGLISH)
