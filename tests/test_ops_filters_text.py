"""Tests for text-statistics filters (length, words, lines, ratios, repetition...)."""

from repro.core.sample import Fields, StatsKeys
from repro.ops.filters.alphanumeric_filter import AlphanumericFilter
from repro.ops.filters.average_line_length_filter import AverageLineLengthFilter
from repro.ops.filters.average_word_length_filter import AverageWordLengthFilter
from repro.ops.filters.character_repetition_filter import CharacterRepetitionFilter
from repro.ops.filters.digit_ratio_filter import DigitRatioFilter
from repro.ops.filters.maximum_line_length_filter import MaximumLineLengthFilter
from repro.ops.filters.paragraph_num_filter import ParagraphNumFilter
from repro.ops.filters.sentence_num_filter import SentenceNumFilter
from repro.ops.filters.special_characters_filter import SpecialCharactersFilter
from repro.ops.filters.text_length_filter import TextLengthFilter
from repro.ops.filters.token_num_filter import TokenNumFilter
from repro.ops.filters.whitespace_ratio_filter import WhitespaceRatioFilter
from repro.ops.filters.word_repetition_filter import WordRepetitionFilter
from repro.ops.filters.words_num_filter import WordsNumFilter


def keep(filter_op, text):
    sample = filter_op.compute_stats({"text": text})
    return filter_op.process(sample)


def stat(filter_op, text, key):
    return filter_op.compute_stats({"text": text})[Fields.stats][key]


class TestLengthFilters:
    def test_text_length_bounds(self):
        assert keep(TextLengthFilter(min_len=5, max_len=10), "123456")
        assert not keep(TextLengthFilter(min_len=5), "abc")
        assert not keep(TextLengthFilter(min_len=0, max_len=3), "abcdef")

    def test_text_length_stat_value(self):
        assert stat(TextLengthFilter(), "hello", StatsKeys.text_len) == 5

    def test_words_num(self):
        assert keep(WordsNumFilter(min_num=3), "one two three four")
        assert not keep(WordsNumFilter(min_num=5), "just three words")

    def test_token_num_counts_subword_chunks(self):
        value = stat(TokenNumFilter(max_token_chars=4), "supercalifragilistic", StatsKeys.num_token)
        assert value == 5

    def test_token_num_bounds(self):
        assert not keep(TokenNumFilter(min_num=10), "short text")

    def test_sentence_num(self):
        assert keep(SentenceNumFilter(min_num=2), "One. Two.")
        assert not keep(SentenceNumFilter(min_num=3), "One. Two.")

    def test_paragraph_num(self):
        assert keep(ParagraphNumFilter(min_num=2), "para one\n\npara two")
        assert not keep(ParagraphNumFilter(min_num=2), "only one paragraph")

    def test_average_word_length(self):
        assert keep(AverageWordLengthFilter(min_len=3, max_len=8), "these words look normal")
        assert not keep(AverageWordLengthFilter(min_len=4), "a b c d")


class TestLineFilters:
    def test_average_line_length(self):
        text = "a" * 50 + "\n" + "b" * 50
        assert keep(AverageLineLengthFilter(min_len=10), text)
        assert not keep(AverageLineLengthFilter(min_len=100), text)

    def test_maximum_line_length(self):
        text = "short\n" + "x" * 300
        assert not keep(MaximumLineLengthFilter(max_len=200), text)
        assert keep(MaximumLineLengthFilter(min_len=1, max_len=400), text)

    def test_empty_text_line_stats(self):
        assert stat(AverageLineLengthFilter(), "", StatsKeys.avg_line_length) == 0.0


class TestRatioFilters:
    def test_alphanumeric_character_ratio(self):
        assert keep(AlphanumericFilter(min_ratio=0.5), "abcdef 123")
        assert not keep(AlphanumericFilter(min_ratio=0.9), "@@@@ ab @@@@")

    def test_alphanumeric_token_ratio(self):
        filter_op = AlphanumericFilter(tokenization=True, min_ratio=0.5)
        assert keep(filter_op, "real words mostly here 42")
        assert not keep(filter_op, "!! ?? .. ;; word")

    def test_special_characters(self):
        assert keep(SpecialCharactersFilter(max_ratio=0.3), "clean prose text here")
        assert not keep(SpecialCharactersFilter(max_ratio=0.1), "#$%^&*()!@ a")

    def test_digit_ratio(self):
        assert not keep(DigitRatioFilter(max_ratio=0.2), "1234567890 ab")
        assert keep(DigitRatioFilter(max_ratio=0.5), "value 42 is fine")

    def test_whitespace_ratio(self):
        assert keep(WhitespaceRatioFilter(min_ratio=0.05, max_ratio=0.4), "normal spacing here")
        assert not keep(WhitespaceRatioFilter(min_ratio=0.05), "nowhitespaceatallinthistext")

    def test_empty_text_ratios_are_zero(self):
        assert stat(SpecialCharactersFilter(), "", StatsKeys.special_char_ratio) == 0.0


class TestRepetitionFilters:
    def test_character_repetition_rejects_loops(self):
        looped = "abcabcabcabcabcabcabcabc"
        assert not keep(CharacterRepetitionFilter(rep_len=3, max_ratio=0.2), looped)

    def test_character_repetition_accepts_prose(self):
        prose = "The quick brown fox jumps over the lazy dog near the river bank today."
        assert keep(CharacterRepetitionFilter(rep_len=10, max_ratio=0.5), prose)

    def test_word_repetition_rejects_repeated_phrases(self):
        text = "buy now " * 30
        assert not keep(WordRepetitionFilter(rep_len=2, max_ratio=0.2), text)

    def test_word_repetition_accepts_varied_text(self):
        text = "every word in this particular sentence appears exactly once today friends"
        assert keep(WordRepetitionFilter(rep_len=2, max_ratio=0.2), text)

    def test_invalid_rep_len(self):
        import pytest

        with pytest.raises(ValueError):
            CharacterRepetitionFilter(rep_len=0)

    def test_stats_not_recomputed_when_present(self):
        filter_op = TextLengthFilter()
        sample = {"text": "abc", Fields.stats: {StatsKeys.text_len: 999}}
        assert filter_op.compute_stats(sample)[Fields.stats][StatsKeys.text_len] == 999
