"""Deterministic chaos suite: seeded faults against full pipeline runs.

Every scenario injects a reproducible fault (exception, worker kill, hang)
via :class:`repro.testing.chaos.FaultPlan` and asserts the fault-tolerance
contract end to end:

* a lenient run **completes**, and its export equals the fault-free export
  minus exactly the quarantined rows/shards;
* the report's ``faults`` section accounts for every retry, pool rebuild,
  quarantine and degradation;
* a ``raise``-policy crash **resumes**: re-running the same checkpointed
  config picks up mid-corpus and produces byte-identical output.

The marker rows are written to pass every filter of the fig-8 recipe
(30+ common words, no repetition, plain ASCII) so dropping them is visible
in the export.
"""

import json

import pytest

from repro.core.dataset import NestedDataset
from repro.core.errors import OpExecutionError
from repro.core.executor import Executor
from repro.core.exporter import Exporter
from repro.core.faults import DegradedExecutionWarning
from repro.recipes import get_recipe
from repro.synth import c4_like
from repro.testing import FaultPlan

MARKER = "velociraptor"

#: distinct, filter-passing texts carrying the marker word (30+ words each,
#: no repeated n-grams, plain punctuation)
MARKER_TEXTS = [
    "The quiet velociraptor walked through the ancient library reading every "
    "dusty page while the patient librarian watched carefully from behind the "
    "long wooden desk and smiled at the curious visitor asking thoughtful "
    "questions about natural history and early reptile anatomy.",
    "A young velociraptor studied the evening sky over the wide river valley, "
    "counting bright stars and naming distant constellations while the warm "
    "wind carried the smell of rain across the tall grass toward the small "
    "camp where the researchers kept their field notes.",
    "Researchers observed the velociraptor sprinting across the open plain at "
    "remarkable speed, recording every stride with careful instruments and "
    "comparing the measurements against older field studies to understand how "
    "such animals balanced their long tails during sharp turns.",
]


def corpus_with_markers(num_samples: int = 90, seed: int = 11) -> list[dict]:
    """A c4-like corpus with the marker rows interleaved at fixed positions."""
    rows = c4_like(num_samples=num_samples, seed=seed).to_list()
    for position, text in zip((7, 33, 61), MARKER_TEXTS):
        rows.insert(position, {"text": text})
    return rows


def write_jsonl(path, rows):
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, ensure_ascii=False) + "\n")
    return path


def export_lines(path) -> list[str]:
    return path.read_text(encoding="utf-8").splitlines()


def fig8_config(tmp_path, tag: str, **overrides) -> dict:
    config = get_recipe("pretrain-c4-refine-en")
    config["export_path"] = str(tmp_path / f"{tag}.jsonl")
    config["work_dir"] = str(tmp_path / f"work-{tag}")
    config.update(overrides)
    return config


SIMPLE_PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"words_num_filter": {"min_num": 1}},
]


class TestQuarantineEqualsFaultFreeMinusPoison:
    """The tentpole acceptance scenario, in both execution modes."""

    @pytest.fixture(scope="class")
    def rows(self):
        return corpus_with_markers()

    def fault_free_lines(self, tmp_path, rows):
        config = fig8_config(tmp_path, "clean")
        Executor(config).run(NestedDataset.from_list(rows))
        lines = export_lines(tmp_path / "clean.jsonl")
        assert sum(MARKER in line for line in lines) == len(MARKER_TEXTS)
        return lines

    def test_memory_mode(self, tmp_path, rows):
        clean_lines = self.fault_free_lines(tmp_path, rows)
        config = fig8_config(tmp_path, "faulted", on_error="quarantine")
        executor = Executor(config)
        FaultPlan().inject("fix_unicode_mapper", match=MARKER).install(executor.ops)
        executor.run(NestedDataset.from_list(rows))

        expected = [line for line in clean_lines if MARKER not in line]
        assert export_lines(tmp_path / "faulted.jsonl") == expected

        faults = executor.last_report["faults"]
        assert faults["quarantined_rows"] == len(MARKER_TEXTS)
        assert faults["op_errors"]["fix_unicode_mapper"] >= len(MARKER_TEXTS)
        assert faults["policy"]["on_error"] == "quarantine"
        quarantine_paths = faults["quarantine_paths"]
        assert len(quarantine_paths) == 1
        import gzip

        with gzip.open(quarantine_paths[0], "rt", encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle]
        assert len(entries) == len(MARKER_TEXTS)
        assert all(MARKER in entry["row"]["text"] for entry in entries)
        assert all(entry["op"] == "fix_unicode_mapper" for entry in entries)

    def test_streaming_mode(self, tmp_path, rows):
        clean_lines = self.fault_free_lines(tmp_path, rows)
        config = fig8_config(
            tmp_path, "faulted-stream", on_error="quarantine", max_shard_rows=25
        )
        executor = Executor(config)
        FaultPlan().inject("fix_unicode_mapper", match=MARKER).install(executor.ops)
        report = executor.run_streaming(NestedDataset.from_list(rows))

        expected = [line for line in clean_lines if MARKER not in line]
        assert export_lines(tmp_path / "faulted-stream.jsonl") == expected
        assert report["faults"]["quarantined_rows"] == len(MARKER_TEXTS)
        # faulted shards are excluded from the shard cache but still complete
        assert report["shards"]["executed_shards"] > 0


class TestTransientFaultRetries:
    def test_retry_heals_without_dropping_rows(self, tmp_path):
        rows = corpus_with_markers(num_samples=30)
        config = {
            "process": SIMPLE_PROCESS,
            "export_path": str(tmp_path / "out.jsonl"),
            "work_dir": str(tmp_path / "work"),
            "max_retries": 3,
            "backoff_s": 0.0,
        }
        executor = Executor(config)
        FaultPlan(state_dir=tmp_path / "fuse").inject(
            "whitespace_normalization_mapper", times=2
        ).install(executor.ops)
        executor.run(NestedDataset.from_list(rows))

        faults = executor.last_report["faults"]
        assert faults["retries"] == 2
        assert faults["quarantined_rows"] == 0
        assert faults["skipped_rows"] == 0

        reference = {
            "process": SIMPLE_PROCESS,
            "export_path": str(tmp_path / "ref.jsonl"),
            "work_dir": str(tmp_path / "work-ref"),
        }
        Executor(reference).run(NestedDataset.from_list(rows))
        assert (tmp_path / "out.jsonl").read_bytes() == (tmp_path / "ref.jsonl").read_bytes()


class TestWorkerSupervision:
    """Dead and hung workers are detected, the pool rebuilt, the chunk retried."""

    def reference_bytes(self, tmp_path, rows):
        config = {
            "process": SIMPLE_PROCESS,
            "export_path": str(tmp_path / "ref.jsonl"),
            "work_dir": str(tmp_path / "work-ref"),
        }
        Executor(config).run(NestedDataset.from_list(rows))
        return (tmp_path / "ref.jsonl").read_bytes()

    def supervised_config(self, tmp_path, **overrides):
        config = {
            "process": SIMPLE_PROCESS,
            "export_path": str(tmp_path / "out.jsonl"),
            "work_dir": str(tmp_path / "work"),
            "np": 2,
            "task_timeout_s": 2.0,
            "backoff_s": 0.01,
        }
        config.update(overrides)
        return config

    def test_killed_worker_triggers_rebuild_and_retry(self, tmp_path):
        rows = corpus_with_markers(num_samples=40)
        reference = self.reference_bytes(tmp_path, rows)
        executor = Executor(self.supervised_config(tmp_path))
        FaultPlan(state_dir=tmp_path / "fuse").inject(
            "whitespace_normalization_mapper", kind="kill", times=1
        ).install(executor.ops)
        with executor:
            executor.run(NestedDataset.from_list(rows))
        assert executor.last_report["faults"]["pool_rebuilds"] >= 1
        assert executor.last_report["faults"]["degradations"] == 0
        assert (tmp_path / "out.jsonl").read_bytes() == reference

    def test_hung_worker_triggers_rebuild_and_retry(self, tmp_path):
        rows = corpus_with_markers(num_samples=40)
        reference = self.reference_bytes(tmp_path, rows)
        executor = Executor(self.supervised_config(tmp_path))
        FaultPlan(state_dir=tmp_path / "fuse").inject(
            "whitespace_normalization_mapper", kind="hang", times=1, hang_s=30.0
        ).install(executor.ops)
        with executor:
            executor.run(NestedDataset.from_list(rows))
        assert executor.last_report["faults"]["pool_rebuilds"] >= 1
        assert (tmp_path / "out.jsonl").read_bytes() == reference

    def test_exhausted_rebuilds_degrade_to_serial(self, tmp_path):
        rows = corpus_with_markers(num_samples=40)
        reference = self.reference_bytes(tmp_path, rows)
        executor = Executor(
            self.supervised_config(tmp_path, max_pool_rebuilds=1)
        )
        # arm on a substring unique to ONE row so exactly one chunk (and
        # hence one kill) fires per dispatch attempt: kill, rebuild, kill
        # again on the retry, then degrade with both fuse tokens burnt
        FaultPlan(state_dir=tmp_path / "fuse").inject(
            "whitespace_normalization_mapper",
            kind="kill",
            match="counting bright stars",
            times=2,
        ).install(executor.ops)
        with executor, pytest.warns(DegradedExecutionWarning):
            executor.run(NestedDataset.from_list(rows))
        faults = executor.last_report["faults"]
        assert faults["pool_rebuilds"] == 1
        assert faults["degradations"] == 1
        # degraded serial execution still produces the exact same bytes
        assert (tmp_path / "out.jsonl").read_bytes() == reference


class TestWholeShardQuarantine:
    def test_persistently_failing_shard_is_dropped_whole(self, tmp_path):
        # exactly 30 unique rows (c4_like plants duplicate pairs for dedup
        # tests, so tag every text) with the marker in the middle shard
        # (rows 10..19)
        rows = [
            {"text": f"{row['text'].strip()} document number {index}"}
            for index, row in enumerate(c4_like(num_samples=40, seed=23).to_list()[:30])
        ]
        rows[12] = {"text": rows[12]["text"] + " " + MARKER}
        process = [
            {"whitespace_normalization_mapper": {}},
            {"document_deduplicator": {}},
        ]
        clean_config = {
            "process": process,
            "export_path": str(tmp_path / "clean.jsonl"),
            "work_dir": str(tmp_path / "work-clean"),
            "max_shard_rows": 10,
        }
        Executor(clean_config).run_streaming(NestedDataset.from_list(rows))
        clean_lines = export_lines(tmp_path / "clean.jsonl")
        assert len(clean_lines) == 30  # unique corpus: dedup keeps everything

        config = {
            "process": process,
            "export_path": str(tmp_path / "out.jsonl"),
            "work_dir": str(tmp_path / "work"),
            "max_shard_rows": 10,
            "on_error": "quarantine",
        }
        executor = Executor(config)
        # the dedup hashing stage has no per-row fallback: a poison batch
        # fails the whole shard, which the policy then drops whole
        FaultPlan().inject("document_deduplicator", match=MARKER).install(executor.ops)
        report = executor.run_streaming(NestedDataset.from_list(rows))

        assert report["faults"]["quarantined_shards"] == 1
        assert export_lines(tmp_path / "out.jsonl") == clean_lines[:10] + clean_lines[20:]
        import gzip

        with gzip.open(report["faults"]["quarantine_paths"][0], "rt", encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle]
        assert len(entries) == 10
        assert all(entry["shard"] for entry in entries)


class TestCrashResumeComposesWithFaults:
    def test_streaming_crash_then_resume_is_byte_identical(self, tmp_path):
        rows = corpus_with_markers(num_samples=40, seed=31)
        input_path = write_jsonl(tmp_path / "in.jsonl", rows)
        config = {
            "dataset_path": str(input_path),
            "process": SIMPLE_PROCESS,
            "export_path": str(tmp_path / "out.jsonl"),
            "work_dir": str(tmp_path / "work"),
            "max_shard_rows": 10,
            "use_checkpoint": True,
        }
        # arm on a substring unique to the marker row at input index 33
        # (shard 3): shards 0-2 spill before the crash, so the resume has
        # something to skip
        crashing = Executor(config)
        FaultPlan(state_dir=tmp_path / "fuse").inject(
            "whitespace_normalization_mapper", match="counting bright stars", times=1
        ).install(crashing.ops)
        with pytest.raises(OpExecutionError) as excinfo:
            crashing.run_streaming()
        message = str(excinfo.value)
        assert "whitespace_normalization_mapper" in message
        assert "shard" in message  # satellite: failures name their shard

        resumed = Executor(config)
        report = resumed.run_streaming()
        assert report["shards"]["resumed_shards"] > 0
        assert report["faults"]["quarantined_rows"] == 0

        reference = {
            "dataset_path": str(input_path),
            "process": SIMPLE_PROCESS,
            "export_path": str(tmp_path / "ref.jsonl"),
            "work_dir": str(tmp_path / "work-ref"),
        }
        Executor(reference).run()
        assert (tmp_path / "out.jsonl").read_bytes() == (tmp_path / "ref.jsonl").read_bytes()

    def test_memory_mode_failure_names_op_and_row(self, tmp_path):
        rows = corpus_with_markers(num_samples=20, seed=37)
        config = {
            "process": SIMPLE_PROCESS,
            "work_dir": str(tmp_path / "work"),
        }
        executor = Executor(config)
        FaultPlan().inject(
            "whitespace_normalization_mapper", match=MARKER
        ).install(executor.ops)
        with pytest.raises(OpExecutionError) as excinfo:
            executor.run(NestedDataset.from_list(rows))
        message = str(excinfo.value)
        assert "whitespace_normalization_mapper" in message
        assert "row index: 7" in message  # first marker row
        assert "--on-error raise" in message


class TestCrashResumeWorstPoints:
    """Satellite: crashes at the two nastiest streaming points still resume."""

    PROCESS = [
        {"whitespace_normalization_mapper": {}},
        {"document_deduplicator": {}},
    ]

    def configs(self, tmp_path):
        input_path = write_jsonl(
            tmp_path / "in.jsonl", c4_like(num_samples=50, seed=41).to_list()
        )
        streaming = {
            "dataset_path": str(input_path),
            "process": self.PROCESS,
            "export_path": str(tmp_path / "out.jsonl"),
            "work_dir": str(tmp_path / "work"),
            "max_shard_rows": 10,
            "use_checkpoint": True,
        }
        reference = {
            "dataset_path": str(input_path),
            "process": self.PROCESS,
            "export_path": str(tmp_path / "ref.jsonl"),
            "work_dir": str(tmp_path / "work-ref"),
        }
        return streaming, reference

    def test_crash_between_hash_pass_and_global_resolve(self, tmp_path):
        import repro.core.executor as executor_module

        streaming, reference = self.configs(tmp_path)

        def resolve_bomb(op, signature):
            raise RuntimeError("crashed before the global resolve")

        original = executor_module.resolve_global_keep
        executor_module.resolve_global_keep = resolve_bomb
        try:
            with pytest.raises(OpExecutionError, match="global resolve|crashed"):
                Executor(streaming).run_streaming()
        finally:
            executor_module.resolve_global_keep = original

        report = Executor(streaming).run_streaming()
        assert report["shards"]["resumed_shards"] > 0

        Executor(reference).run()
        assert (tmp_path / "out.jsonl").read_bytes() == (tmp_path / "ref.jsonl").read_bytes()

    def test_crash_mid_export(self, tmp_path):
        import repro.core.executor as executor_module

        streaming, reference = self.configs(tmp_path)

        class MidExportCrash(Exporter):
            def export_stream(self, rows):
                def limited(source):
                    for index, row in enumerate(source):
                        if index >= 25:
                            raise RuntimeError("crashed mid-export")
                        yield row

                return super().export_stream(limited(rows))

        original = executor_module.Exporter
        executor_module.Exporter = MidExportCrash
        try:
            with pytest.raises(RuntimeError, match="crashed mid-export"):
                Executor(streaming).run_streaming()
        finally:
            executor_module.Exporter = original

        report = Executor(streaming).run_streaming()
        assert report["shards"]["resumed_shards"] > 0

        Executor(reference).run()
        assert (tmp_path / "out.jsonl").read_bytes() == (tmp_path / "ref.jsonl").read_bytes()
