"""Tests for explicit JSON sanitization of exports, checkpoints and spill shards."""

import json
import warnings

import pytest

from repro.core.checkpoint import CheckpointManager
from repro.core.dataset import NestedDataset
from repro.core.exporter import Exporter
from repro.core.serialization import JsonSanitizer, SerializationWarning


class TestJsonSanitizer:
    def test_clean_rows_pass_through(self):
        sanitizer = JsonSanitizer()
        row = {"text": "ok", "meta": {"n": 1, "tags": ["a", "b"], "score": 0.5}}
        assert json.loads(sanitizer.dumps(row)) == row
        assert not sanitizer.dirty

    def test_non_json_values_become_repr_and_are_recorded(self):
        sanitizer = JsonSanitizer()
        row = {"text": "ok", "meta": {"blob": {1, 2}, "when": complex(1, 2)}}
        payload = json.loads(sanitizer.dumps(row))
        assert payload["text"] == "ok"
        assert isinstance(payload["meta"]["blob"], str)
        assert sanitizer.dirty
        assert "meta.blob" in sanitizer.offending
        assert "meta.when" in sanitizer.offending

    def test_nested_list_paths(self):
        sanitizer = JsonSanitizer()
        sanitizer.dumps({"items": [1, {"x": object()}]})
        assert "items[].x" in sanitizer.offending

    def test_non_string_keys_are_stringified(self):
        sanitizer = JsonSanitizer()
        payload = json.loads(sanitizer.dumps({"outer": {(1, 2): "v"}}))
        assert payload == {"outer": {"(1, 2)": "v"}}
        assert sanitizer.dirty

    def test_warn_emits_once_and_names_keys(self):
        sanitizer = JsonSanitizer()
        sanitizer.dumps({"bad": object()})
        with pytest.warns(SerializationWarning, match="bad"):
            sanitizer.warn("test write")
        # offending state is consumed by the warning
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sanitizer.warn("test write")


class TestExporterSanitization:
    def test_export_warns_once_naming_offending_keys(self, tmp_path):
        dataset = NestedDataset.from_list(
            [
                {"text": "a", "meta": {"payload": {1, 2, 3}}},
                {"text": "b", "meta": {"payload": {4, 5}}},
            ]
        )
        path = tmp_path / "out.jsonl"
        with pytest.warns(SerializationWarning, match=r"meta\.payload") as caught:
            Exporter(path).export(dataset)
        assert len([w for w in caught if w.category is SerializationWarning]) == 1
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(isinstance(row["meta"]["payload"], str) for row in rows)

    def test_clean_export_does_not_warn(self, tmp_path):
        dataset = NestedDataset.from_list([{"text": "a", "meta": {"n": 1}}])
        with warnings.catch_warnings():
            warnings.simplefilter("error", SerializationWarning)
            Exporter(tmp_path / "out.jsonl").export(dataset)


class TestCheckpointSanitization:
    def test_checkpoint_save_warns_and_round_trips(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        dataset = NestedDataset.from_list([{"text": "a", "meta": {"blob": b"raw-bytes"}}])
        with pytest.warns(SerializationWarning, match=r"meta\.blob"):
            manager.save(dataset, op_index=1, op_names=["op"], op_hashes=["h"])
        restored, op_index, names = manager.load()
        assert op_index == 1 and names == ["op"]
        # the conversion is explicit (and was warned about): repr string survives
        assert restored[0]["meta"]["blob"] == repr(b"raw-bytes")

    def test_clean_checkpoint_does_not_warn(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        dataset = NestedDataset.from_list([{"text": "a"}])
        with warnings.catch_warnings():
            warnings.simplefilter("error", SerializationWarning)
            manager.save(dataset, op_index=1, op_names=["op"])
