"""End-to-end integration tests spanning multiple subsystems.

These mirror the paper's workflows: refine a corpus → probe it → train and
evaluate a proxy model → compare against the unrefined data, plus the public
API promises of the top-level ``repro`` package.
"""

import pytest

import repro
from repro import Analyzer, Executor
from repro.core.sample import Fields
from repro.recipes import get_recipe
from repro.synth import common_crawl_like, instruction_dataset
from repro.tools.evaluator import Evaluator, PairwiseJudge, ProxyTrainer
from repro.tools.quality_classifier import train_gpt3_like_classifier


@pytest.fixture(scope="module")
def raw_corpus():
    return common_crawl_like(num_samples=90, seed=42, quality=0.35, duplicate_ratio=0.15)


@pytest.fixture(scope="module")
def refined_corpus(raw_corpus):
    return Executor(get_recipe("pretrain-common-crawl-refine-en")).run(raw_corpus)


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("NestedDataset", "Executor", "Analyzer", "OPERATORS", "load_config"):
            assert hasattr(repro, name)

    def test_operator_registry_size_claim(self):
        assert len(repro.OPERATORS) > 50


class TestRefinementLoop:
    def test_refinement_reduces_size_but_keeps_data(self, raw_corpus, refined_corpus):
        assert 0 < len(refined_corpus) < len(raw_corpus)

    def test_refined_data_is_cleaner(self, raw_corpus, refined_corpus):
        def flagged_fraction(dataset):
            from repro.ops.common.flagged_words import FLAGGED_WORDS_EN

            total, flagged = 0, 0
            for row in dataset:
                words = row[Fields.text].lower().split()
                total += len(words)
                flagged += sum(1 for word in words if word in FLAGGED_WORDS_EN)
            return flagged / total if total else 0.0

        assert flagged_fraction(refined_corpus) < flagged_fraction(raw_corpus)

    def test_refined_data_has_no_exact_duplicates(self, refined_corpus):
        texts = [row[Fields.text] for row in refined_corpus]
        assert len(texts) == len(set(texts))

    def test_probe_shows_higher_stopword_ratio_after_refinement(self, raw_corpus, refined_corpus):
        analyzer = Analyzer(with_diversity=False)
        raw_probe = analyzer.analyze(raw_corpus)
        refined_probe = analyzer.analyze(refined_corpus)
        assert (
            refined_probe.summaries["stopwords_ratio"].mean
            >= raw_probe.summaries["stopwords_ratio"].mean
        )

    def test_proxy_model_prefers_refined_data(self, raw_corpus, refined_corpus):
        trainer = ProxyTrainer()
        evaluator = Evaluator()
        refined_report = evaluator.evaluate(trainer.train(refined_corpus, name="refined"))
        raw_report = evaluator.evaluate(trainer.train(raw_corpus, name="raw"))
        assert refined_report.average_score > raw_report.average_score

    def test_judge_prefers_refined_model(self, raw_corpus, refined_corpus):
        trainer = ProxyTrainer()
        result = PairwiseJudge(num_prompts=80).compare(
            trainer.train(refined_corpus, name="refined"), trainer.train(raw_corpus, name="raw")
        )
        assert result.wins_a > result.wins_b


class TestQualityClassifierInPipeline:
    def test_classifier_scores_feed_topk_selector(self, raw_corpus):
        classifier = train_gpt3_like_classifier(num_samples=50, num_iterations=200)
        annotated = classifier.annotate_dataset(raw_corpus)
        from repro.ops.selectors.topk_specified_field_selector import TopkSpecifiedFieldSelector

        top = TopkSpecifiedFieldSelector(
            field_key=f"{Fields.stats}.quality_score", top_ratio=0.3
        ).process(annotated)
        assert 0 < len(top) <= len(raw_corpus) * 0.35
        mean_top = sum(row[Fields.stats]["quality_score"] for row in top) / len(top)
        mean_all = sum(row[Fields.stats]["quality_score"] for row in annotated) / len(annotated)
        assert mean_top > mean_all


class TestFineTuningWorkflow:
    def test_instruction_refinement_end_to_end(self):
        pool = instruction_dataset(num_samples=120, seed=9, usage="CFT", quality=0.6)
        refined = Executor(get_recipe("finetune-cft-en-refine")).run(pool)
        assert 0 < len(refined) < len(pool)
        trainer = ProxyTrainer()
        result = PairwiseJudge(num_prompts=60).compare(
            trainer.train(refined, name="refined-ift"), trainer.train(pool, name="raw-ift")
        )
        assert result.wins_a >= result.wins_b
