"""Golden-fixture tests for the lint rules in :mod:`repro.tools.lint`.

Each rule has a bad and a clean fixture module under ``tests/fixtures/lint/``;
the bad ones must produce exactly the expected (rule, line) pairs and the
clean ones must produce nothing, across *all* rules.  Fixtures are parsed,
never imported, so they stay out of the operator registry.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.tools.lint import Violation, lint_paths, render_json, render_text
from repro.tools.lint.framework import resolve_rules
from repro.tools.lint.rules import all_rule_ids

FIXTURE_DIR = Path(__file__).parent / "fixtures" / "lint"

# rule id -> (bad fixture relative to FIXTURE_DIR, expected (rule, line) pairs)
GOLDEN = {
    "purity-time": ("bad_purity_time.py", [("purity-time", 14)]),
    "purity-random": ("bad_purity_random.py", [("purity-random", 14), ("purity-random", 15)]),
    "purity-env": ("bad_purity_env.py", [("purity-env", 15), ("purity-env", 19)]),
    "purity-io": ("bad_purity_io.py", [("purity-io", 15), ("purity-io", 17)]),
    "purity-global": (
        "bad_purity_global.py",
        [("purity-global", 16), ("purity-global", 18), ("purity-global", 19)],
    ),
    "config-completeness": (
        "bad_config_completeness.py",
        [("config-completeness", 16), ("config-completeness", 19)],
    ),
    "param-spec-coverage": (
        "bad_param_spec_coverage.py",
        [("param-spec-coverage", 11), ("param-spec-coverage", 15)],
    ),
    "schema-drift": (
        "bad_schema_drift.py",
        [("schema-drift", 11), ("schema-drift", 11), ("schema-drift", 17)],
    ),
    "batched-parity": ("bad_batched_parity.py", [("batched-parity", 11)]),
    "picklability": (
        "bad_picklability.py",
        [("picklability", 15), ("picklability", 16), ("picklability", 17)],
    ),
    "registry-hygiene": (
        "mappers/bad_registry_hygiene.py",
        [
            ("registry-hygiene", 1),
            ("registry-hygiene", 6),
            ("registry-hygiene", 6),
            ("registry-hygiene", 12),
        ],
    ),
    "exception-hygiene": (
        "bad_exception_hygiene.py",
        [("exception-hygiene", 14), ("exception-hygiene", 22)],
    ),
}

CLEAN_FIXTURES = sorted(
    path.relative_to(FIXTURE_DIR).as_posix() for path in FIXTURE_DIR.rglob("clean_*.py")
)


def pairs(violations: list[Violation]) -> list[tuple[str, int]]:
    return [(v.rule, v.line) for v in violations]


class TestGoldenFixtures:
    def test_every_rule_has_a_golden_fixture(self):
        assert sorted(GOLDEN) == sorted(all_rule_ids())

    def test_every_rule_has_a_clean_fixture(self):
        stems = {name.split("/")[-1] for name in CLEAN_FIXTURES}
        for rule_id in all_rule_ids():
            assert f"clean_{rule_id.replace('-', '_')}.py" in stems

    @pytest.mark.parametrize("rule_id", sorted(GOLDEN))
    def test_bad_fixture_flags_exact_rule_and_lines(self, rule_id):
        relpath, expected = GOLDEN[rule_id]
        result = lint_paths([FIXTURE_DIR / relpath])
        assert pairs(result.violations) == expected
        assert result.exit_code == 1
        for violation in result.violations:
            assert violation.severity in ("error", "warning")
            assert violation.message

    @pytest.mark.parametrize("relpath", CLEAN_FIXTURES)
    def test_clean_fixture_is_clean_under_all_rules(self, relpath):
        result = lint_paths([FIXTURE_DIR / relpath])
        assert pairs(result.violations) == []
        assert result.suppressed == []
        assert result.exit_code == 0

    def test_rule_filter_restricts_checks(self):
        path = FIXTURE_DIR / "bad_purity_random.py"
        result = lint_paths([path], rule_ids=["purity-time"])
        assert result.violations == []
        assert lint_paths([path], rule_ids=["purity-random"]).exit_code == 1

    def test_unknown_rule_id_suggests_neighbours(self):
        with pytest.raises(ValueError, match="purity-time"):
            resolve_rules(["purity-tme"])


class TestSuppression:
    def test_lint_ignore_comments_silence_violations(self):
        result = lint_paths([FIXTURE_DIR / "suppressed.py"])
        assert result.violations == []
        assert result.exit_code == 0
        assert pairs(result.suppressed) == [("purity-time", 15), ("purity-random", 16)]

    def test_scoped_ignore_only_covers_listed_rules(self, tmp_path):
        source = FIXTURE_DIR / "bad_purity_time.py"
        patched = source.read_text().replace(
            "time.time()  # line 14: purity-time",
            "time.time()  # repro: lint-ignore[purity-random]",
        )
        target = tmp_path / "bad_purity_time.py"
        target.write_text(patched)
        result = lint_paths([target])
        assert pairs(result.violations) == [("purity-time", 14)]


class TestReporters:
    def test_text_report_names_rule_file_and_line(self):
        result = lint_paths([FIXTURE_DIR / "bad_purity_time.py"])
        text = render_text(result)
        assert "[purity-time]" in text
        assert "bad_purity_time.py:14" in text
        assert "found 1 violation(s):" in text

    def test_json_report_round_trips(self):
        result = lint_paths([FIXTURE_DIR / "bad_schema_drift.py"])
        payload = json.loads(render_json(result))
        assert payload["exit_code"] == 1
        assert [v["rule"] for v in payload["violations"]] == ["schema-drift"] * 3
        assert all(v["path"].endswith("bad_schema_drift.py") for v in payload["violations"])


class TestCli:
    def test_lint_command_exits_nonzero_on_bad_fixture(self, capsys):
        code = main(["lint", str(FIXTURE_DIR / "bad_purity_time.py")])
        assert code == 1
        assert "[purity-time]" in capsys.readouterr().out

    def test_lint_command_exits_zero_on_clean_fixture(self, capsys):
        code = main(["lint", str(FIXTURE_DIR / "clean_purity_time.py")])
        assert code == 0
        assert "lint clean" in capsys.readouterr().out

    def test_lint_json_output(self, capsys):
        code = main(["lint", "--json", str(FIXTURE_DIR / "bad_picklability.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["violations"]) == 3

    def test_list_rules_names_every_rule(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in all_rule_ids():
            assert rule_id in output

    def test_baseline_masks_known_violations(self, tmp_path, capsys):
        target = str(FIXTURE_DIR / "bad_purity_io.py")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", target, "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", target, "--baseline", str(baseline)]) == 0
        assert "lint clean" in capsys.readouterr().out
        assert main(["lint", str(FIXTURE_DIR / "bad_purity_time.py"), "--baseline", str(baseline)]) == 1


class TestBaselineStability:
    def test_baseline_with_windows_paths_still_matches(self, tmp_path, capsys):
        target = str(FIXTURE_DIR / "bad_purity_io.py")
        baseline = tmp_path / "baseline.json"
        assert main(["lint", target, "--write-baseline", str(baseline)]) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["baseline"]
        for entry in payload["baseline"]:
            entry[1] = entry[1].replace("/", "\\")
        baseline.write_text(json.dumps(payload), encoding="utf-8")
        capsys.readouterr()
        assert main(["lint", target, "--baseline", str(baseline)]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_write_baseline_under_rule_filter_preserves_other_rules(self, tmp_path):
        from repro.tools.lint.reporters import load_baseline, write_baseline

        baseline = tmp_path / "baseline.json"
        io_result = lint_paths(
            [FIXTURE_DIR / "bad_purity_io.py"], rule_ids=["purity-io"]
        )
        write_baseline(baseline, io_result)
        time_result = lint_paths(
            [FIXTURE_DIR / "bad_purity_time.py"], rule_ids=["purity-time"]
        )
        write_baseline(baseline, time_result)
        rules_in_baseline = {entry[0] for entry in load_baseline(baseline)}
        assert {"purity-io", "purity-time"} <= rules_in_baseline

    def test_rewriting_covered_rule_replaces_its_entries(self, tmp_path):
        from repro.tools.lint.reporters import load_baseline, write_baseline

        baseline = tmp_path / "baseline.json"
        io_result = lint_paths(
            [FIXTURE_DIR / "bad_purity_io.py"], rule_ids=["purity-io"]
        )
        write_baseline(baseline, io_result)
        clean = lint_paths(
            [FIXTURE_DIR / "clean_purity_io.py"], rule_ids=["purity-io"]
        )
        write_baseline(baseline, clean)
        assert not {e for e in load_baseline(baseline) if e[0] == "purity-io"}


class TestSeverityFilter:
    def test_severity_filter_restricts_findings(self):
        target = FIXTURE_DIR / "bad_param_spec_coverage.py"
        warnings_only = lint_paths([target], severities=["warning"])
        assert warnings_only.violations
        assert all(v.severity == "warning" for v in warnings_only.violations)
        errors_only = lint_paths([target], severities=["error"])
        assert errors_only.violations == []

    def test_unknown_severity_is_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            lint_paths([FIXTURE_DIR / "bad_purity_io.py"], severities=["fatal"])

    def test_cli_severity_flag(self, capsys):
        target = str(FIXTURE_DIR / "bad_param_spec_coverage.py")
        assert main(["lint", target]) == 1
        capsys.readouterr()
        assert main(["lint", target, "--severity", "error"]) == 0

    def test_text_report_has_severity_footer(self):
        result = lint_paths([FIXTURE_DIR / "bad_param_spec_coverage.py"])
        assert "0 error(s) / 2 warning(s)" in render_text(result)
