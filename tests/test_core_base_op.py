"""Tests for the OP base classes and their run() contracts."""

from repro.core.base_op import Filter, Formatter, Mapper
from repro.core.dataset import NestedDataset
from repro.core.sample import Fields
from repro.core.tracer import Tracer


class UppercaseMapper(Mapper):
    _name = "uppercase_test_mapper"

    def process(self, sample):
        return self.set_text(sample, self.get_text(sample).upper())


class MinLenFilter(Filter):
    _name = "min_len_test_filter"

    def __init__(self, min_len=3, **kwargs):
        super().__init__(**kwargs)
        self.min_len = min_len

    def compute_stats(self, sample, context=False):
        sample.setdefault(Fields.stats, {})["len"] = len(self.get_text(sample))
        return sample

    def process(self, sample):
        return sample[Fields.stats]["len"] >= self.min_len


def dataset():
    return NestedDataset.from_list([{"text": "abcdef"}, {"text": "xy"}, {"text": "hello"}])


class TestMapper:
    def test_run_transforms_all(self):
        out = UppercaseMapper().run(dataset())
        assert [row["text"] for row in out] == ["ABCDEF", "XY", "HELLO"]

    def test_custom_text_key(self):
        data = NestedDataset.from_list([{"text": "keep", "summary": "abc"}])
        out = UppercaseMapper(text_key="summary").run(data)
        assert out[0]["summary"] == "ABC"
        assert out[0]["text"] == "keep"

    def test_tracer_records_changes(self):
        tracer = Tracer()
        UppercaseMapper().run(dataset(), tracer=tracer)
        assert tracer.records[0].op_type == "mapper"
        assert len(tracer.records[0].examples) == 3


class TestFilter:
    def test_run_drops_failing_samples(self):
        out = MinLenFilter(min_len=3).run(dataset())
        assert len(out) == 2

    def test_stats_written_to_kept_samples(self):
        out = MinLenFilter(min_len=3).run(dataset())
        assert all(Fields.stats in row and "len" in row[Fields.stats] for row in out)

    def test_config_exposes_parameters(self):
        config = MinLenFilter(min_len=7).config()
        assert config["min_len"] == 7
        assert config["text_key"] == "text"

    def test_get_text_missing_returns_empty(self):
        assert MinLenFilter().get_text({"other": 3}) == ""

    def test_get_text_non_string_returns_empty(self):
        assert MinLenFilter().get_text({"text": 42}) == ""


class TestFormatterUnify:
    def test_promotes_configured_text_key(self):
        unified = Formatter.unify_samples([{"content": "hello"}], text_keys=["content"])
        assert unified[0][Fields.text] == "hello"

    def test_promotes_any_string_field_as_fallback(self):
        unified = Formatter.unify_samples([{"num": 3, "body": "x"}], text_keys=["content"])
        assert unified[0][Fields.text] == "x"

    def test_no_text_yields_empty_string(self):
        unified = Formatter.unify_samples([{"num": 3}], text_keys=["content"])
        assert unified[0][Fields.text] == ""

    def test_stats_initialised(self):
        unified = Formatter.unify_samples([{"text": "x"}], text_keys=["text"])
        assert unified[0][Fields.stats] == {}
