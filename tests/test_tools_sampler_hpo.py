"""Tests for the enhanced samplers and the HPO tools (search spaces, optimizers, objectives)."""

import random

import pytest

from repro.core.dataset import NestedDataset
from repro.core.errors import HPOError
from repro.synth import instruction_dataset, wikipedia_like
from repro.tools.hpo.objectives import make_mixture_objective, make_op_threshold_objective
from repro.tools.hpo.optimizers import (
    Hyperband,
    RandomSearch,
    TPEOptimizer,
    best_trial,
    parameter_importance,
)
from repro.tools.hpo.search_space import Choice, IntUniform, LogUniform, SearchSpace, Trial, Uniform
from repro.tools.sampler.diversity import DiversitySampler
from repro.tools.sampler.stratified import StratifiedSampler


def meta_dataset():
    return NestedDataset.from_list(
        [{"text": f"doc number {index} talks about things", "meta": {"source": "a" if index < 8 else "b", "len": index}}
         for index in range(12)]
    )


class TestStratifiedSampler:
    def test_balances_categorical_buckets(self):
        sampler = StratifiedSampler(field_key="meta.source", seed=0)
        sample = sampler.sample(meta_dataset(), 4)
        sources = [row["meta"]["source"] for row in sample]
        assert set(sources) == {"a", "b"}

    def test_numeric_field_bucketed_by_quantiles(self):
        sampler = StratifiedSampler(field_key="meta.len", num_buckets=3, seed=0)
        sample = sampler.sample(meta_dataset(), 6)
        assert len(sample) == 6

    def test_budget_larger_than_dataset(self):
        sampler = StratifiedSampler(field_key="meta.source")
        assert len(sampler.sample(meta_dataset(), 100)) == 12

    def test_zero_budget(self):
        assert len(StratifiedSampler(field_key="meta.source").sample(meta_dataset(), 0)) == 0

    def test_field_required(self):
        with pytest.raises(ValueError):
            StratifiedSampler(field_key="")


class TestDiversitySampler:
    def test_covers_more_pairs_than_random(self):
        dataset = instruction_dataset(num_samples=150, seed=0)
        diversity_sampler = DiversitySampler(seed=0)
        diverse = diversity_sampler.sample(dataset, 40)
        random_subset = dataset.shuffle(seed=0).take(40)
        assert diversity_sampler.diversity_of(diverse) >= diversity_sampler.diversity_of(random_subset)

    def test_budget_respected(self):
        dataset = instruction_dataset(num_samples=60, seed=1)
        assert len(DiversitySampler(seed=1).sample(dataset, 25)) == 25

    def test_empty_dataset(self):
        assert len(DiversitySampler().sample(NestedDataset.empty(), 5)) == 0


class TestSearchSpace:
    def test_sampling_respects_bounds(self):
        space = SearchSpace({"u": Uniform(0, 1), "i": IntUniform(1, 5), "c": Choice((1, 2)),
                             "l": LogUniform(0.01, 1.0)})
        rng = random.Random(0)
        for _ in range(20):
            params = space.sample(rng)
            assert 0 <= params["u"] <= 1
            assert 1 <= params["i"] <= 5 and isinstance(params["i"], int)
            assert params["c"] in (1, 2)
            assert 0.01 <= params["l"] <= 1.0

    def test_mixture_weight_helper(self):
        space = SearchSpace.for_mixture_weights(["wiki", "cc"])
        assert set(space.names()) == {"w_wiki", "w_cc"}

    def test_empty_space_rejected(self):
        with pytest.raises(HPOError):
            SearchSpace({})

    def test_invalid_distribution_rejected(self):
        with pytest.raises(HPOError):
            SearchSpace({"x": 42})


def quadratic(**params):
    x = params["x"]
    return -((x - 0.7) ** 2)


class TestOptimizers:
    def test_random_search_finds_near_optimum(self):
        optimizer = RandomSearch(SearchSpace({"x": Uniform(0, 1)}), seed=0)
        best = optimizer.optimize(quadratic, num_trials=60)
        assert abs(best.params["x"] - 0.7) < 0.15

    def test_tpe_beats_or_matches_small_random_budget(self):
        space = SearchSpace({"x": Uniform(0, 1)})
        tpe_best = TPEOptimizer(space, seed=1).optimize(quadratic, num_trials=40)
        assert abs(tpe_best.params["x"] - 0.7) < 0.15

    def test_random_search_requires_positive_trials(self):
        with pytest.raises(HPOError):
            RandomSearch(SearchSpace({"x": Uniform(0, 1)})).optimize(quadratic, num_trials=0)

    def test_hyperband_allocates_growing_budgets(self):
        def budgeted(budget, **params):
            return -((params["x"] - 0.5) ** 2) * (1.0 / budget)

        optimizer = Hyperband(SearchSpace({"x": Uniform(0, 1)}), max_budget=27, eta=3, seed=0)
        best = optimizer.optimize(budgeted, num_configs=9)
        budgets = {trial.budget for trial in optimizer.trials}
        assert len(budgets) > 1
        assert best in optimizer.trials

    def test_hyperband_eta_validation(self):
        with pytest.raises(HPOError):
            Hyperband(SearchSpace({"x": Uniform(0, 1)}), eta=1)

    def test_best_trial_empty_raises(self):
        with pytest.raises(HPOError):
            best_trial([])

    def test_parameter_importance_detects_influential_param(self):
        trials = [
            Trial(params={"x": value, "noise": 0.5}, value=-((value - 0.7) ** 2))
            for value in [i / 20 for i in range(20)]
        ]
        importance = parameter_importance(trials)
        assert "x" in importance
        assert "noise" not in importance or importance["x"] >= importance["noise"]


class TestObjectives:
    @pytest.fixture(scope="class")
    def classifier(self):
        from repro.core.sample import Fields
        from repro.synth import common_crawl_like
        from repro.tools.quality_classifier.pipeline import QualityClassifier

        positives = [row[Fields.text] for row in wikipedia_like(num_samples=40, seed=0)]
        negatives = [
            row[Fields.text]
            for row in common_crawl_like(num_samples=40, seed=1, quality=0.0, duplicate_ratio=0.0)
        ]
        return QualityClassifier(num_iterations=200).fit(positives, negatives)

    def test_mixture_objective_prefers_clean_dataset(self, classifier):
        from repro.synth import common_crawl_like

        datasets = {
            "wiki": wikipedia_like(num_samples=30, seed=2),
            "cc": common_crawl_like(num_samples=30, seed=3, quality=0.0, duplicate_ratio=0.0),
        }
        objective = make_mixture_objective(datasets, classifier, dedup=False, seed=0)
        clean_heavy = objective(w_wiki=1.0, w_cc=0.0)
        dirty_heavy = objective(w_wiki=0.0, w_cc=1.0)
        assert clean_heavy > dirty_heavy

    def test_mixture_objective_zero_weights(self, classifier):
        datasets = {"wiki": wikipedia_like(num_samples=10, seed=4)}
        objective = make_mixture_objective(datasets, classifier)
        assert objective(w_wiki=0.0) == 0.0

    def test_op_threshold_objective_returns_score_in_range(self, classifier):
        from repro.synth import common_crawl_like

        dataset = common_crawl_like(num_samples=30, seed=5)
        objective = make_op_threshold_objective(dataset, classifier)
        value = objective(max_ratio=0.4)
        assert 0.0 <= value <= 1.0
