"""Ablations — cache reuse, cache compression and the checkpoint space model.

These quantify the design choices of Sec. 4.1.1 / 6 called out in DESIGN.md:
(a) re-running an identical recipe with the cache enabled skips all operator
work, (b) compressed cache files are substantially smaller than plain ones,
and (c) checkpoint mode bounds peak space at 3 dataset copies versus the
per-OP growth of cache mode (Appendix A.2).
"""

from conftest import print_table, run_once

from repro.core.cache import CacheManager, estimate_cache_space, estimate_checkpoint_space
from repro.core.executor import Executor
from repro.core.monitor import time_call
from repro.recipes import get_recipe
from repro.synth import c4_like


def reproduce_cache_ablation(tmp_dir: str) -> dict:
    corpus = c4_like(num_samples=150, seed=9)
    process = get_recipe("pretrain-c4-refine-en")["process"]

    cold_config = {"process": process, "use_cache": True, "cache_dir": f"{tmp_dir}/cache"}
    cold_time, _ = time_call(Executor(cold_config).run, corpus)
    warm_executor = Executor(cold_config)
    warm_time, _ = time_call(warm_executor.run, corpus)

    plain = CacheManager(f"{tmp_dir}/plain", compression="none")
    compressed = CacheManager(f"{tmp_dir}/zlib", compression="zlib")
    plain.save("k", corpus)
    compressed.save("k", corpus)

    num_mappers = sum(1 for entry in process if next(iter(entry)).endswith("mapper"))
    num_filters = sum(1 for entry in process if next(iter(entry)).endswith("filter"))
    num_dedups = sum(1 for entry in process if "deduplicator" in next(iter(entry)))
    return {
        "cold_time_s": cold_time,
        "warm_time_s": warm_time,
        "cache_hits_on_rerun": warm_executor.last_report["cache"]["hits"],
        "plain_cache_bytes": plain.total_bytes(),
        "compressed_cache_bytes": compressed.total_bytes(),
        "cache_mode_space_units": estimate_cache_space(1, num_mappers, num_filters, num_dedups),
        "checkpoint_mode_space_units": estimate_checkpoint_space(1),
    }


def test_ablation_cache_and_checkpoint(benchmark, tmp_path):
    result = run_once(benchmark, reproduce_cache_ablation, str(tmp_path))
    print_table("Ablation: caching, compression and checkpoint space", [result])

    # a warm cache skips the operator work entirely
    assert result["warm_time_s"] < result["cold_time_s"]
    assert result["cache_hits_on_rerun"] > 0
    # cache compression reduces on-disk size substantially (zstd/LZ4 stand-in)
    assert result["compressed_cache_bytes"] < 0.7 * result["plain_cache_bytes"]
    # checkpoint mode bounds peak space below cache mode for this recipe (Appendix A.2)
    assert result["checkpoint_mode_space_units"] <= result["cache_mode_space_units"]
