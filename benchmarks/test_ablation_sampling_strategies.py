"""Ablation — enhanced sampling strategies vs uniform random sampling.

Sec. 5.2 motivates the stratified and diversity-aware samplers; this ablation
quantifies their effect: at the same sample budget, the diversity sampler
covers more verb–noun pairs than uniform random sampling, and the stratified
sampler covers every source bucket.
"""

from collections import Counter

from conftest import print_table, run_once

from repro.analysis.diversity_analysis import DiversityAnalysis
from repro.core.dataset import concatenate_datasets
from repro.core.sample import Fields
from repro.recipes import build_finetune_pool
from repro.tools.sampler import DiversitySampler, StratifiedSampler

BUDGET = 120


def reproduce_sampling_ablation() -> list[dict]:
    pool = build_finetune_pool(num_datasets=6, samples_per_dataset=80, seed=7)
    merged = concatenate_datasets(list(pool.values()))
    analysis = DiversityAnalysis()

    subsets = {
        "random": merged.shuffle(seed=7).take(BUDGET),
        "stratified (by source)": StratifiedSampler(field_key="meta.source", seed=7).sample(merged, BUDGET),
        "diversity (verb-noun)": DiversitySampler(seed=7).sample(merged, BUDGET),
    }
    rows = []
    for name, subset in subsets.items():
        report = analysis.analyze(subset)
        source_counts = Counter(row[Fields.meta]["source"] for row in subset)
        rows.append(
            {
                "strategy": name,
                "samples": len(subset),
                "distinct_verb_noun_pairs": report.distinct_pairs,
                "distinct_sources": len(source_counts),
                "largest_source_share": max(source_counts.values()) / len(subset),
            }
        )
    return rows


def test_ablation_sampling_strategies(benchmark):
    rows = run_once(benchmark, reproduce_sampling_ablation)
    print_table("Ablation: sampling strategies at equal budget", rows)
    by_name = {row["strategy"]: row for row in rows}

    assert all(row["samples"] == BUDGET for row in rows)
    # the diversity sampler covers at least as many verb–noun pairs as random sampling
    assert (
        by_name["diversity (verb-noun)"]["distinct_verb_noun_pairs"]
        >= by_name["random"]["distinct_verb_noun_pairs"]
    )
    # the stratified sampler touches every source and is no more skewed than random
    assert by_name["stratified (by source)"]["distinct_sources"] == 6
    assert (
        by_name["stratified (by source)"]["largest_source_share"]
        <= by_name["random"]["largest_source_share"] + 0.05
    )
