"""Figure 7 — average benchmark score vs pre-training token budget for three recipes.

Paper result: LLMs pre-trained on the Data-Juicer-refined RedPajama+Pile
recipe consistently outperform the unrefined RedPajama and RedPajama+Pile
corpora at every token budget (50B/100B/150B tokens; here scaled down to the
proxy-model substrate).
"""

from conftest import print_table, run_once

from repro.recipes import build_pretrain_mixture
from repro.tools.evaluator import Evaluator, ProxyTrainer

TOKEN_BUDGETS = [4_000, 8_000, 16_000]
SAMPLES_PER_COMPONENT = 35


def reproduce_figure7() -> list[dict]:
    corpora = {
        "RedPajama": build_pretrain_mixture(
            samples_per_component=SAMPLES_PER_COMPONENT, include_pile_like=False
        ),
        "RedPajama+Pile": build_pretrain_mixture(
            samples_per_component=SAMPLES_PER_COMPONENT, include_pile_like=True
        ),
        "RedPajama+Pile (Data-Juicer)": build_pretrain_mixture(
            samples_per_component=SAMPLES_PER_COMPONENT, include_pile_like=True, refined=True
        ),
    }
    trainer = ProxyTrainer()
    evaluator = Evaluator()
    rows = []
    for name, corpus in corpora.items():
        row = {"recipe": name}
        for budget in TOKEN_BUDGETS:
            model = trainer.train(corpus, name=f"{name}@{budget}", num_tokens=budget)
            row[f"score@{budget}"] = evaluator.evaluate(model).average_score
        rows.append(row)
    return rows


def test_fig7_pretrain_curve(benchmark):
    rows = run_once(benchmark, reproduce_figure7)
    print_table("Figure 7: average score vs #training tokens", rows)

    by_name = {row["recipe"]: row for row in rows}
    juicer = by_name["RedPajama+Pile (Data-Juicer)"]
    # (1) the refined recipe wins at every token budget (the paper's headline shape)
    for budget in TOKEN_BUDGETS:
        key = f"score@{budget}"
        assert juicer[key] >= by_name["RedPajama"][key]
        assert juicer[key] >= by_name["RedPajama+Pile"][key]
    # (2) every recipe improves as the token budget grows
    for row in rows:
        scores = [row[f"score@{budget}"] for budget in TOKEN_BUDGETS]
        assert scores == sorted(scores)
