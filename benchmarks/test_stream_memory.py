"""Streaming engine — bounded peak memory at matched throughput and output.

The out-of-core run mode must (1) process a corpus several times larger than
its shard budget while holding only ~one shard of payload in memory, (2)
produce byte-identical exports to the in-memory path, and (3) stay within
~15% of the in-memory path's wall-clock.  This suite generates an on-disk
jsonl corpus >= 5x the configured shard budget, runs both paths through the
same web-refinement pipeline, and records the results in
``BENCH_stream.json`` at the repo root (refreshed by ``make bench-stream``).

Peak memory is asserted on the tracemalloc Python-heap peak, which is
resettable per run and therefore robust inside a long pytest session; the
process RSS delta is recorded alongside (``resource.ru_maxrss`` is a
process-lifetime high-water mark, so under a full test session it can only
be reported, not tightly asserted).
"""

import json
import resource
import tempfile
import time
import tracemalloc
from pathlib import Path

from conftest import print_table, run_once

from repro.core.executor import Executor
from repro.synth.generators import DocumentGenerator, NoiseInjector

BENCH_FILE = Path(__file__).parent.parent / "BENCH_stream.json"

#: shard budget under test; the corpus is generated >= 5x larger
MAX_SHARD_ROWS = 600
NUM_SAMPLES = 6000  # 10x the shard budget

PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"clean_links_mapper": {}},
    {"text_length_filter": {"min_len": 60}},
    {"special_characters_filter": {"max_ratio": 0.4}},
    {"words_num_filter": {"min_num": 10}},
    {"document_deduplicator": {}},
]


def build_corpus(path: Path, num_samples: int, seed: int = 13) -> int:
    """Write a noisy web-like jsonl corpus to disk; returns its size in bytes."""
    import random

    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)
    rng = random.Random(seed + 2)
    with path.open("w", encoding="utf-8") as handle:
        for _ in range(num_samples):
            roll = rng.random()
            if roll < 0.55:
                text = generator.document(num_paragraphs=rng.randint(1, 2))
            elif roll < 0.85:
                text = noise.corrupt(generator.paragraph(), kinds=["links", "repetition"])
            else:
                text = noise.gibberish(length=rng.randint(100, 300))
            handle.write(json.dumps({"text": text}, ensure_ascii=False) + "\n")
    return path.stat().st_size


def _measure(run) -> dict:
    """Wall time, resettable Python-heap peak and RSS delta of one call."""
    started_tracing = not tracemalloc.is_tracing()
    if started_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    rss_before_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    start = time.perf_counter()
    run()
    wall = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    if started_tracing:
        tracemalloc.stop()
    rss_after_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "wall_time_s": round(wall, 3),
        "peak_heap_mb": round(peak / (1024 * 1024), 2),
        "rss_delta_mb": round((rss_after_kb - rss_before_kb) / 1024, 2),
    }


def reproduce_stream_memory() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench-stream-"))
    corpus_path = workdir / "corpus.jsonl"
    corpus_bytes = build_corpus(corpus_path, NUM_SAMPLES)

    def config(mode: str) -> dict:
        return {
            "dataset_path": str(corpus_path),
            "export_path": str(workdir / f"{mode}.jsonl"),
            "process": PROCESS,
            "work_dir": str(workdir / f"work-{mode}"),
            "max_shard_rows": MAX_SHARD_ROWS,
        }

    # warm-up on a small slice: one-time costs (lazy imports, codepoint class
    # tables, refinement caches) must not be billed to either measured run
    warm_path = workdir / "warm.jsonl"
    build_corpus(warm_path, 64)
    for mode in ("warm-stream", "warm-memory"):
        warm_cfg = config(mode)
        warm_cfg["dataset_path"] = str(warm_path)
        executor = Executor(warm_cfg)
        if mode == "warm-stream":
            executor.run_streaming()
        else:
            executor.run()

    # streaming first: ru_maxrss is a process high-water mark, so measuring
    # the bounded path before the materialising one keeps its delta honest
    stream_executor = Executor(config("stream"))
    streaming = _measure(stream_executor.run_streaming)
    streaming["rows_out"] = stream_executor.last_report["num_output_samples"]
    streaming["shards"] = stream_executor.last_report["shards"]["input_shards"]

    memory_executor = Executor(config("memory"))
    in_memory = _measure(lambda: memory_executor.run())
    in_memory["rows_out"] = memory_executor.last_report["num_output_samples"]

    identical = (workdir / "stream.jsonl").read_bytes() == (workdir / "memory.jsonl").read_bytes()
    payload = {
        "pipeline": PROCESS,
        "corpus": {
            "rows": NUM_SAMPLES,
            "bytes": corpus_bytes,
            "mb": round(corpus_bytes / (1024 * 1024), 2),
        },
        "shard_budget": {"max_shard_rows": MAX_SHARD_ROWS},
        "corpus_over_budget": round(NUM_SAMPLES / MAX_SHARD_ROWS, 1),
        "streaming": streaming,
        "in_memory": in_memory,
        "byte_identical_export": identical,
        "heap_ratio": round(streaming["peak_heap_mb"] / max(in_memory["peak_heap_mb"], 1e-9), 3),
        "throughput_ratio": round(streaming["wall_time_s"] / max(in_memory["wall_time_s"], 1e-9), 3),
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload


def test_stream_memory(benchmark):
    result = run_once(benchmark, reproduce_stream_memory)
    rows = [
        {
            "path": "streaming",
            "time_s": result["streaming"]["wall_time_s"],
            "peak_heap_mb": result["streaming"]["peak_heap_mb"],
            "rss_delta_mb": result["streaming"]["rss_delta_mb"],
            "rows_out": result["streaming"]["rows_out"],
        },
        {
            "path": "in-memory",
            "time_s": result["in_memory"]["wall_time_s"],
            "peak_heap_mb": result["in_memory"]["peak_heap_mb"],
            "rss_delta_mb": result["in_memory"]["rss_delta_mb"],
            "rows_out": result["in_memory"]["rows_out"],
        },
    ]
    print_table(
        f"Streaming vs in-memory ({result['corpus']['mb']} MB corpus, "
        f"{result['corpus_over_budget']}x the shard budget)",
        rows,
    )

    # the gating scenario: the corpus is >= 5x the shard budget ...
    assert result["corpus_over_budget"] >= 5.0
    # ... the exported bytes are identical ...
    assert result["byte_identical_export"]
    assert result["streaming"]["rows_out"] == result["in_memory"]["rows_out"]
    # ... peak memory is bounded: a fraction of the in-memory peak and well
    # below the corpus size (the in-memory path must hold the whole corpus,
    # the streaming path roughly one shard plus skinny dedup signatures) ...
    corpus_mb = result["corpus"]["mb"]
    assert result["streaming"]["peak_heap_mb"] < corpus_mb, result
    assert result["heap_ratio"] < 0.5, result
    # ... and throughput stays within ~15% of the in-memory path
    assert result["throughput_ratio"] <= 1.15, result
