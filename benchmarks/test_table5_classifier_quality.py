"""Table 5 — precision / recall / F1 of the three quality classifiers.

Paper result: the re-implemented GPT-3 classifier reaches F1 = 97.5%, the
Chinese extension 98.6%, while the Code classifier only reaches 61.6% (star
count is a weak quality proxy).  The reproduction checks the same ordering:
both text classifiers are strong, the code classifier is clearly weaker.
"""

from conftest import print_table, run_once

from repro.core.sample import Fields
from repro.synth import chinese_web_like, code_like, common_crawl_like, wikipedia_like
from repro.tools.quality_classifier import (
    train_chinese_classifier,
    train_code_classifier,
    train_gpt3_like_classifier,
)


def _texts(dataset):
    return [row[Fields.text] for row in dataset]


def reproduce_table5() -> list[dict]:
    rows = []

    english = train_gpt3_like_classifier(num_samples=150, seed=0)
    english_eval = english.evaluate(
        _texts(wikipedia_like(num_samples=50, seed=901)),
        _texts(common_crawl_like(num_samples=50, seed=902, quality=0.0, duplicate_ratio=0.0)),
    )
    rows.append({"classifier": "GPT-3 (EN)", **english_eval.as_dict()})

    chinese = train_chinese_classifier(num_samples=100, seed=1)
    chinese_eval = chinese.evaluate(
        _texts(chinese_web_like(num_samples=40, seed=903, quality=1.0)),
        _texts(chinese_web_like(num_samples=40, seed=904, quality=0.0)),
    )
    rows.append({"classifier": "Chinese", **chinese_eval.as_dict()})

    code = train_code_classifier(num_samples=120, seed=2)
    held_out = code_like(num_samples=120, seed=905, quality=0.5)
    positives, negatives = [], []
    for row in held_out:
        (positives if row[Fields.meta]["stars"] >= 1000 else negatives).append(row[Fields.text])
    code_eval = code.evaluate(positives, negatives)
    rows.append({"classifier": "Code", **code_eval.as_dict()})
    return rows


def test_table5_classifier_quality(benchmark):
    rows = run_once(benchmark, reproduce_table5)
    print_table("Table 5: quality classifier precision/recall/F1", rows)
    by_name = {row["classifier"]: row for row in rows}

    # both text classifiers are strong (paper: 97.5% / 98.6% F1)
    assert by_name["GPT-3 (EN)"]["f1"] > 0.85
    assert by_name["Chinese"]["f1"] > 0.85
    # the code classifier is clearly weaker than both text classifiers (paper: 61.6%)
    assert by_name["Code"]["f1"] < by_name["GPT-3 (EN)"]["f1"]
    assert by_name["Code"]["f1"] < by_name["Chinese"]["f1"]
