"""Table 7 — statistics of the Data-Juicer pre-training data recipe.

Paper result: the refined pre-training mixture consists of 15 components with
CommonCrawl (~44.9%) and C4 (~22.6%) dominating, and extra epochs on Books
(2.0) and Wikipedia (2.5).  The reproduction reports both the paper's recorded
proportions and the measured composition of the scaled-down synthetic mixture.
"""

from conftest import print_table, run_once

from repro.recipes import PRETRAIN_COMPONENTS, build_pretrain_mixture, mixture_stats, paper_table7_rows


def reproduce_table7() -> dict:
    mixture = build_pretrain_mixture(samples_per_component=60, seed=0)
    measured = [stat.as_dict() for stat in mixture_stats(mixture)]
    return {"paper": paper_table7_rows(), "measured": measured}


def test_table7_pretrain_recipe(benchmark):
    result = run_once(benchmark, reproduce_table7)
    print_table("Table 7 (paper proportions)", result["paper"])
    print_table("Table 7 (measured synthetic mixture)", result["measured"])

    # the recorded recipe covers the 15 components with proportions summing to ~1
    assert len(result["paper"]) == 15
    assert abs(sum(row["proportion"] for row in result["paper"]) - 1.0) < 0.01
    # web data dominates, as in the paper
    assert result["paper"][0]["component"] == "CommonCrawl"
    assert PRETRAIN_COMPONENTS["CommonCrawl"]["proportion"] > 0.4

    measured = {row["component"]: row for row in result["measured"]}
    # the assembled mixture is dominated by its web components too
    web_share = sum(
        measured[name]["sampling_proportion"] for name in ("CommonCrawl", "C4") if name in measured
    )
    assert web_share > 0.3
    # the upweighted high-quality components are present
    assert "Wikipedia" in measured and "Books" in measured
