"""Table 8 — category statistics of the labelled fine-tuning collection.

Paper result: the Alpaca-CoT collection is labelled along four category axes
(language, usage, task type, generation method); e.g. 17 IFT datasets,
23 single-round CFT datasets, 28 English / 14 Chinese datasets.  The
reproduction reports those recorded counts and verifies the synthetic
fine-tuning pool carries the same tag structure.
"""

from collections import Counter

from conftest import print_table, run_once

from repro.core.sample import Fields
from repro.recipes import FINETUNE_CATEGORY_COUNTS, build_finetune_pool, paper_table8_rows


def reproduce_table8() -> dict:
    pool = build_finetune_pool(num_datasets=9, samples_per_dataset=30, seed=0)
    tag_counts: Counter = Counter()
    for dataset in pool.values():
        first = dataset[0]
        tag_counts[("Language", first[Fields.meta]["language"])] += 1
        tag_counts[("Usage", first[Fields.meta]["usage"])] += 1
    measured = [
        {"category": category, "sub_category": sub, "num_datasets": count}
        for (category, sub), count in sorted(tag_counts.items())
    ]
    return {"paper": paper_table8_rows(), "measured_pool": measured}


def test_table8_finetune_recipe(benchmark):
    result = run_once(benchmark, reproduce_table8)
    print_table("Table 8 (paper dataset counts per tag)", result["paper"])
    print_table("Table 8 (synthetic pool composition)", result["measured_pool"])

    paper_rows = {(row["category"], row["sub_category"]): row["num_datasets"] for row in result["paper"]}
    # recorded values match the paper's Table 8
    assert paper_rows[("Language", "English")] == 28
    assert paper_rows[("Language", "Chinese")] == 14
    assert paper_rows[("Usage", "Instruct Fine-Tuning (IFT)")] == 17
    assert paper_rows[("Usage", "CFT: Single-Round Dialog")] == 23
    assert sum(FINETUNE_CATEGORY_COUNTS["Generation Method"].values()) == 39

    # the synthetic pool exposes the same tag axes so tag-filtering recipes work
    categories = {row["category"] for row in result["measured_pool"]}
    assert categories == {"Language", "Usage"}
    measured_usage = {
        row["sub_category"] for row in result["measured_pool"] if row["category"] == "Usage"
    }
    assert measured_usage == {"IFT", "CFT"}
