"""Figure 3 / Sec. 4.1.2 — HPO over mixture weights maximising (n/N + quality score).

Paper workflow: mixture weights for M candidate datasets are searched by an
HPO scheduler against the target ``n/N + s`` (token share plus average GPT-3
quality score), and the resulting importance/correlation view reveals which
weights matter.  The reproduction runs the same loop with the TPE optimizer
over three synthetic datasets of very different quality and checks that HPO
(a) beats random weights and (b) attributes importance to the weight of the
low-quality dataset.
"""

from conftest import print_table, run_once

from repro.synth import books_like, common_crawl_like, wikipedia_like
from repro.tools.hpo import (
    SearchSpace,
    TPEOptimizer,
    make_mixture_objective,
    parameter_importance,
)
from repro.tools.quality_classifier import train_gpt3_like_classifier


def reproduce_hpo() -> dict:
    datasets = {
        "wikipedia": wikipedia_like(num_samples=40, seed=1),
        "books": books_like(num_samples=25, seed=2),
        "crawl": common_crawl_like(num_samples=40, seed=3, quality=0.05, duplicate_ratio=0.0),
    }
    classifier = train_gpt3_like_classifier(num_samples=80, seed=0, num_iterations=300)
    objective = make_mixture_objective(datasets, classifier, dedup=False, seed=0)

    space = SearchSpace.for_mixture_weights(list(datasets))
    optimizer = TPEOptimizer(space, seed=0, num_startup_trials=6)
    best = optimizer.optimize(objective, num_trials=18)
    importance = parameter_importance(optimizer.trials)

    trial_values = [trial.value for trial in optimizer.trials]
    return {
        "best_params": best.params,
        "best_value": best.value,
        "first_random_value": trial_values[0],
        "importance": importance,
    }


def test_fig3_hpo_mixture(benchmark):
    result = run_once(benchmark, reproduce_hpo)
    rows = [
        {"weight": name, "best_value": value, "importance": result["importance"].get(name, 0.0)}
        for name, value in sorted(result["best_params"].items())
    ]
    print_table("Figure 3: HPO over mixture weights (target = n/N + quality)", rows)
    print(f"best objective value: {result['best_value']:.3f} "
          f"(first random trial: {result['first_random_value']:.3f})")

    # HPO finds a mixture at least as good as its first random draw
    assert result["best_value"] >= result["first_random_value"]
    # the optimum does not zero out every clean dataset
    assert result["best_params"]["w_wikipedia"] + result["best_params"]["w_books"] > 0.2
    # an importance/correlation view is produced for the searched weights
    assert result["importance"], "importance analysis should not be empty"
