"""Ablation — exact-hash vs MinHash-LSH vs SimHash deduplication.

The paper's Deduplicators offer hash-based and vector-based comparisons; this
ablation quantifies their trade-off on a corpus with injected exact and near
duplicates: exact hashing only removes identical copies, while the two
similarity sketches also remove near duplicates, at a higher cost.
"""

from conftest import print_table, run_once

from repro.core.dataset import NestedDataset
from repro.core.monitor import time_call
from repro.ops.deduplicators.document_deduplicator import DocumentDeduplicator
from repro.ops.deduplicators.document_minhash_deduplicator import DocumentMinhashDeduplicator
from repro.ops.deduplicators.document_simhash_deduplicator import DocumentSimhashDeduplicator
from repro.synth import DocumentGenerator


def build_duplicated_corpus(num_docs: int = 120, seed: int = 3) -> NestedDataset:
    generator = DocumentGenerator(seed)
    rows = []
    for index in range(num_docs):
        text = generator.document(num_paragraphs=2)
        rows.append({"text": text})
        if index % 4 == 0:  # exact duplicate
            rows.append({"text": text})
        if index % 5 == 0:  # near duplicate (light edit)
            rows.append({"text": text.replace("the", "a", 3) + " Extra closing sentence."})
    return NestedDataset.from_list(rows)


def reproduce_dedup_ablation() -> list[dict]:
    corpus = build_duplicated_corpus()
    methods = {
        "exact (MD5)": DocumentDeduplicator(),
        "MinHash-LSH": DocumentMinhashDeduplicator(jaccard_threshold=0.7),
        "SimHash": DocumentSimhashDeduplicator(hamming_threshold=8),
    }
    rows = []
    for name, dedup in methods.items():
        elapsed, output = time_call(dedup.run, corpus)
        rows.append(
            {
                "method": name,
                "input_docs": len(corpus),
                "kept_docs": len(output),
                "removed": len(corpus) - len(output),
                "time_s": elapsed,
            }
        )
    return rows


def test_ablation_dedup_methods(benchmark):
    rows = run_once(benchmark, reproduce_dedup_ablation)
    print_table("Ablation: deduplication methods", rows)
    by_name = {row["method"]: row for row in rows}

    # every method removes at least the exact duplicates
    assert all(row["removed"] > 0 for row in rows)
    # the similarity sketches remove near-duplicates that exact hashing keeps
    assert by_name["MinHash-LSH"]["kept_docs"] < by_name["exact (MD5)"]["kept_docs"]
    assert by_name["SimHash"]["kept_docs"] < by_name["exact (MD5)"]["kept_docs"]
    # exact hashing is the cheapest method
    assert by_name["exact (MD5)"]["time_s"] <= min(
        by_name["MinHash-LSH"]["time_s"], by_name["SimHash"]["time_s"]
    )
