"""Figure 9 — processing time before and after OP fusion / reordering.

Paper result: on a 14-OP recipe (5 mappers, 8 filters, 1 deduplicator, 5 of
them fusible), context sharing + OP fusion + reordering saves up to ~25% of
total processing time and up to ~42% of the time spent in fusible OPs, across
three dataset sizes.
"""

from conftest import print_table, run_once

from repro.core.executor import Executor
from repro.core.monitor import time_call
from repro.synth import c4_like

# the 14-OP recipe of the paper's fusion experiment: 5 mappers, 8 filters
# (5 of them word-based and therefore fusible), 1 deduplicator.
FUSION_PROCESS = [
    {"fix_unicode_mapper": {}},
    {"whitespace_normalization_mapper": {}},
    {"punctuation_normalization_mapper": {}},
    {"clean_links_mapper": {}},
    {"clean_email_mapper": {}},
    {"alphanumeric_filter": {"tokenization": True, "min_ratio": 0.1}},
    {"words_num_filter": {"min_num": 5}},
    {"word_repetition_filter": {"rep_len": 5, "max_ratio": 0.8}},
    {"stopwords_filter": {"min_ratio": 0.05}},
    {"flagged_words_filter": {"max_ratio": 0.2}},
    {"text_length_filter": {"min_len": 20}},
    {"special_characters_filter": {"max_ratio": 0.6}},
    {"maximum_line_length_filter": {"max_len": 4000}},
    {"document_deduplicator": {}},
]

DATASET_SIZES = {"small": 80, "medium": 200, "large": 400}


def reproduce_figure9() -> list[dict]:
    rows = []
    for label, num_samples in DATASET_SIZES.items():
        corpus = c4_like(num_samples=num_samples, seed=17)
        unfused_time, unfused_out = time_call(
            Executor({"process": FUSION_PROCESS, "op_fusion": False}).run, corpus
        )
        fused_time, fused_out = time_call(
            Executor({"process": FUSION_PROCESS, "op_fusion": True}).run, corpus
        )
        rows.append(
            {
                "dataset": f"{label} ({num_samples} docs)",
                "unfused_s": unfused_time,
                "fused_s": fused_time,
                "saving_%": 100.0 * (1.0 - fused_time / unfused_time),
                "same_output": len(unfused_out) == len(fused_out),
            }
        )
    return rows


def test_fig9_op_fusion(benchmark):
    rows = run_once(benchmark, reproduce_figure9)
    print_table("Figure 9: processing time before/after OP fusion", rows)
    for row in rows:
        # fusion never changes the surviving sample set
        assert row["same_output"]
        # fusion saves time at every dataset size (paper: up to ~25% of total time)
        assert row["fused_s"] < row["unfused_s"], row
    # the saving is substantial on the largest dataset
    assert rows[-1]["saving_%"] > 10.0
