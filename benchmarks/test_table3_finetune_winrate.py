"""Table 3 — pairwise judge win/tie counts for fine-tuning recipes.

Paper result: models fine-tuned on Data-Juicer recipes win more pairwise
comparisons than (a) models tuned on larger competitive open datasets
(Alpaca / Belle) and (b) models tuned on equal-size random mixtures, for both
the English and the Chinese scenario.
"""

from conftest import print_table, run_once

from repro.core.dataset import concatenate_datasets
from repro.recipes import (
    build_finetune_pool,
    data_juicer_finetune_dataset,
    random_finetune_dataset,
)
from repro.tools.evaluator import PairwiseJudge, ProxyTrainer

NUM_PROMPTS = 120

#: all fine-tuned proxy models see the same token budget (compute-matched
#: fine-tuning), so the comparison isolates data quality/diversity, not volume
FINETUNE_TOKEN_BUDGET = 6_000


def _scenario(language: str, seed: int) -> list[dict]:
    pool = build_finetune_pool(num_datasets=8, samples_per_dataset=70, seed=seed)
    trainer = ProxyTrainer()
    judge = PairwiseJudge(num_prompts=NUM_PROMPTS, seed=seed)

    # all baselines of a scenario use the same language as the Data-Juicer
    # recipe they are compared with (Alpaca/Random-EN vs Belle/Random-ZH in
    # the paper), so the comparison isolates data quality, not language mix
    language_pool = {
        name: dataset
        for name, dataset in pool.items()
        if dataset[0]["meta"]["language"] == language.upper()
    }
    # the "competitive open dataset" baseline: the whole raw same-language pool
    alpaca_like = concatenate_datasets(list(language_pool.values()))
    juicer = data_juicer_finetune_dataset(pool, num_samples=150, language=language, usage="CFT", seed=seed)
    random_subset = random_finetune_dataset(language_pool, num_samples=len(juicer), seed=seed)

    model_juicer = trainer.train(juicer, name=f"Data-Juicer ({language})", num_tokens=FINETUNE_TOKEN_BUDGET)
    model_alpaca = trainer.train(alpaca_like, name=f"Open baseline ({language})", num_tokens=FINETUNE_TOKEN_BUDGET)
    model_random = trainer.train(random_subset, name=f"Random (CFT, {language})", num_tokens=FINETUNE_TOKEN_BUDGET)

    rows = []
    for baseline_name, baseline_model, baseline_size in (
        ("open baseline", model_alpaca, len(alpaca_like)),
        ("random sampling", model_random, len(random_subset)),
    ):
        result = judge.compare(model_juicer, baseline_model)
        rows.append(
            {
                "scenario": f"{language} vs {baseline_name}",
                "juicer_samples": len(juicer),
                "baseline_samples": baseline_size,
                "juicer_wins": result.wins_a,
                "baseline_wins": result.wins_b,
                "ties": result.ties,
            }
        )
    return rows


def reproduce_table3() -> list[dict]:
    return _scenario("EN", seed=11) + _scenario("ZH", seed=23)


def test_table3_finetune_winrate(benchmark):
    rows = run_once(benchmark, reproduce_table3)
    print_table("Table 3: pairwise win/tie counts (judge over %d prompts)" % NUM_PROMPTS, rows)
    for row in rows:
        # Data-Juicer recipes win every pairwise comparison...
        assert row["juicer_wins"] > row["baseline_wins"], row
        # ...while never using more data than the baseline they beat
        assert row["juicer_samples"] <= row["baseline_samples"], row
        assert row["juicer_wins"] + row["baseline_wins"] + row["ties"] == NUM_PROMPTS
