"""Table 2 — average score of pre-trained models: refined recipe beats baselines with fewer tokens.

Paper result: LLaMA-1.3B on the Data-Juicer recipe (150B tokens) outscores
Falcon-1.3B (350B) and Pythia-1.4B (300B); adding the refined IFT data during
continued pre-training improves it further while using ~30% of the IFT volume.
"""

from conftest import print_table, run_once

from repro.core.dataset import concatenate_datasets
from repro.recipes import build_pretrain_mixture, build_finetune_pool, data_juicer_finetune_dataset, random_finetune_dataset
from repro.tools.evaluator import Evaluator, ProxyTrainer, ReferenceModelRegistry

REFINED_BUDGET = 12_000
BASELINE_BUDGET = 24_000  # baselines see twice the token budget, as in the paper


def reproduce_table2() -> list[dict]:
    trainer = ProxyTrainer()
    evaluator = Evaluator()
    registry = ReferenceModelRegistry()

    raw = build_pretrain_mixture(samples_per_component=35, include_pile_like=True)
    refined = build_pretrain_mixture(samples_per_component=35, include_pile_like=True, refined=True)

    pool = build_finetune_pool(num_datasets=6, samples_per_dataset=60, seed=3)
    ift_raw = random_finetune_dataset(pool, num_samples=240, seed=3)
    ift_refined = data_juicer_finetune_dataset(pool, num_samples=120, language="EN", usage="IFT", seed=3)

    configurations = [
        ("Falcon-1.3B-like (raw web)", raw, BASELINE_BUDGET),
        ("Pythia-1.4B-like (raw pile)", raw.shuffle(seed=1), BASELINE_BUDGET),
        ("LLaMA-1.3B (Data-Juicer)", refined, REFINED_BUDGET),
        ("+ Alpaca-CoT-IFT (raw IFT)", concatenate_datasets([refined, ift_raw]), REFINED_BUDGET + 4_000),
        ("+ Our Refined IFT", concatenate_datasets([refined, ift_refined]), REFINED_BUDGET + 2_000),
    ]
    rows = []
    for name, corpus, budget in configurations:
        model = trainer.train(corpus, name=name, num_tokens=budget)
        report = evaluator.evaluate(model)
        registry.register_report(report, training_data=name, num_tokens=budget)
        rows.append({"model": name, "#tokens": budget, "avg_score": report.average_score})
    return rows


def test_table2_pretrain_scores(benchmark):
    rows = run_once(benchmark, reproduce_table2)
    print_table("Table 2: average score on the 16-task suite", rows)
    scores = {row["model"]: row["avg_score"] for row in rows}

    # refined recipe with half the tokens beats both raw baselines
    assert scores["LLaMA-1.3B (Data-Juicer)"] > scores["Falcon-1.3B-like (raw web)"]
    assert scores["LLaMA-1.3B (Data-Juicer)"] > scores["Pythia-1.4B-like (raw pile)"]
    # refined IFT continuation beats the raw IFT continuation with less data
    assert scores["+ Our Refined IFT"] >= scores["+ Alpaca-CoT-IFT (raw IFT)"]
    # and the IFT continuations do not fall below the pre-trained model
    assert scores["+ Our Refined IFT"] >= scores["LLaMA-1.3B (Data-Juicer)"]
