"""Batched columnar engine — rows/sec of the batched vs the per-row op path.

The batched execution engine hands operators column slices instead of per-row
dicts, with vectorised kernels behind the hottest ops (char-class counting,
char n-gram repetition, shared batch tokenisation, bulk MinHash).  This suite
measures end-to-end rows/sec of a mappers + fused-filters + dedup pipeline on
a >=20k-row synthetic web corpus for both execution strategies, asserts the
outputs are identical, and records the results in ``BENCH_batch_engine.json``
at the repo root (refreshed by ``make bench-batch``).
"""

import json
import random
import time
from pathlib import Path

from conftest import print_table, run_once

from repro.core.dataset import NestedDataset
from repro.core.sample import Fields
from repro.ops import build_ops
from repro.synth.generators import DocumentGenerator, NoiseInjector

BENCH_FILE = Path(__file__).parent.parent / "BENCH_batch_engine.json"

#: mappers + (fusible) filters + dedup — the hot ops of a web-cleaning recipe
PROCESS = [
    {"fix_unicode_mapper": {}},
    {"whitespace_normalization_mapper": {}},
    {"lowercase_mapper": {}},
    {"text_length_filter": {"min_len": 40}},
    {"whitespace_ratio_filter": {"min_ratio": 0.01, "max_ratio": 0.5}},
    {"digit_ratio_filter": {"max_ratio": 0.3}},
    {"special_characters_filter": {"max_ratio": 0.4}},
    {"character_repetition_filter": {"rep_len": 8, "max_ratio": 0.6}},
    {"words_num_filter": {"min_num": 10}},
    {"word_repetition_filter": {"rep_len": 5, "max_ratio": 0.6}},
    {"stopwords_filter": {"min_ratio": 0.0}},
    {"flagged_words_filter": {"max_ratio": 1.0}},
    {"document_deduplicator": {}},
]


def web_corpus(num_samples: int, seed: int, kind: str, duplicate_ratio: float = 0.1) -> NestedDataset:
    """Synthetic web text: clean prose, link/repetition noise, gibberish, dups.

    ``short`` documents (~450 chars) model comment/snippet-scale web text;
    ``medium`` (~750 chars) models article-scale pages.
    """
    generator = DocumentGenerator(seed)
    noise = NoiseInjector(seed + 1)
    rng = random.Random(seed + 2)
    samples = []
    for _ in range(num_samples):
        roll = rng.random()
        if kind == "short":
            if roll < 0.5:
                text = generator.paragraph(num_sentences=rng.randint(1, 3))
            elif roll < 0.8:
                text = noise.corrupt(
                    generator.paragraph(num_sentences=2), kinds=["links", "repetition"]
                )
            elif roll < 0.9:
                text = noise.gibberish(length=rng.randint(60, 200))
            else:
                text = generator.sentence()
        else:
            if roll < 0.45:
                text = generator.document(num_paragraphs=rng.randint(1, 3))
            elif roll < 0.75:
                text = noise.corrupt(
                    generator.document(num_paragraphs=rng.randint(1, 2)),
                    kinds=rng.sample(["html", "links", "repetition", "flagged"], k=rng.randint(1, 2)),
                )
            elif roll < 0.85:
                text = noise.gibberish(length=rng.randint(100, 400))
            else:
                text = generator.paragraph()
        samples.append({Fields.text: text, Fields.meta: {"source": f"{kind}_web"}})
    for _ in range(int(num_samples * duplicate_ratio)):
        samples.append(dict(samples[rng.randrange(len(samples))]))
    rng.shuffle(samples)
    return NestedDataset.from_list(samples)


def _run_pipeline(corpus: NestedDataset, batched: bool) -> tuple[NestedDataset, float, list]:
    """Run the pipeline one op at a time, returning output, seconds, per-op times."""
    import repro.ops.common.helper_funcs as helper_funcs

    helper_funcs._REFINE_CACHE.clear()  # neither strategy inherits warm caches
    ops = build_ops(PROCESS, op_fusion=True)
    dataset = corpus
    per_op = []
    start = time.perf_counter()
    for op in ops:
        op_start = time.perf_counter()
        dataset = op.run(dataset, batched=batched)
        per_op.append({"op": op.name, "seconds": round(time.perf_counter() - op_start, 4)})
    return dataset, time.perf_counter() - start, per_op


def _measure_scenario(kind: str, num_samples: int, seed: int) -> dict:
    corpus = web_corpus(num_samples, seed=seed, kind=kind)
    batched_out, batched_s, batched_ops = _run_pipeline(corpus, batched=True)
    per_row_out, per_row_s, per_row_ops = _run_pipeline(corpus, batched=False)
    # the whole point: a pure execution-strategy change, identical outputs
    assert batched_out.to_list() == per_row_out.to_list()
    assert batched_out.fingerprint == per_row_out.fingerprint
    return {
        "scenario": kind,
        "rows": len(corpus),
        "avg_chars": round(corpus.num_bytes() / len(corpus), 1),
        "rows_kept": len(batched_out),
        "per_row_s": round(per_row_s, 3),
        "batched_s": round(batched_s, 3),
        "per_row_rows_per_sec": round(len(corpus) / per_row_s, 1),
        "batched_rows_per_sec": round(len(corpus) / batched_s, 1),
        "speedup": round(per_row_s / batched_s, 2),
        "per_op": {"batched": batched_ops, "per_row": per_row_ops},
    }


def reproduce_batch_throughput() -> list[dict]:
    scenarios = [
        # the gating scenario: >=20k rows through mappers + fused filters + dedup
        _measure_scenario("short", num_samples=20000, seed=7),
        # secondary: article-scale pages, dominated by per-text kernel time
        _measure_scenario("medium", num_samples=6000, seed=11),
    ]
    payload = {
        "pipeline": PROCESS,
        "op_fusion": True,
        "scenarios": scenarios,
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return [
        {key: value for key, value in scenario.items() if key != "per_op"}
        for scenario in scenarios
    ]


def test_batch_throughput(benchmark):
    rows = run_once(benchmark, reproduce_batch_throughput)
    print_table("Batched engine — rows/sec per-row vs batched", rows)
    gating = rows[0]
    assert gating["rows"] >= 20000
    # acceptance bar: >=3x rows/sec over the per-row path on the 20k pipeline
    assert gating["speedup"] >= 3.0, f"batched speedup {gating['speedup']} < 3x"
    # the secondary scenario must also win, if by a smaller margin
    assert rows[1]["speedup"] > 1.5
