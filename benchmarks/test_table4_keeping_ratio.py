"""Table 4 — CommonCrawl keeping ratios of the quality classifiers under both keeping rules.

Paper result: the re-implemented GPT-3 classifier keeps 3.22% of CommonCrawl
under the ``label`` rule and 1.41% under the ``pareto`` rule (original GPT-3:
1.30%); the Chinese classifier keeps a comparable 1.81%.  The reproduction
checks the same qualitative facts: keeping ratios are small, the label rule
keeps more than the Pareto rule, and the Chinese classifier behaves like the
English one.
"""

from conftest import print_table, run_once

from repro.core.sample import Fields
from repro.synth import chinese_web_like, common_crawl_like
from repro.tools.quality_classifier import train_chinese_classifier, train_gpt3_like_classifier

CRAWL_QUALITY = 0.03  # real CommonCrawl is overwhelmingly low quality


def reproduce_table4() -> list[dict]:
    english = train_gpt3_like_classifier(num_samples=150, seed=0)
    chinese = train_chinese_classifier(num_samples=100, seed=1)

    crawl_en = [
        row[Fields.text]
        for row in common_crawl_like(num_samples=400, seed=5, quality=CRAWL_QUALITY, duplicate_ratio=0.0)
    ]
    crawl_zh = [
        row[Fields.text]
        for row in chinese_web_like(num_samples=300, seed=6, quality=CRAWL_QUALITY)
    ]
    # the paper reports both rules for the English classifier and only the
    # label rule for the Chinese one (Table 4)
    return [
        {
            "classifier": "Our GPT-3 (EN)",
            "keep@label": english.keeping_ratio(crawl_en, "label"),
            "keep@pareto": english.keeping_ratio(crawl_en, "pareto"),
        },
        {
            "classifier": "Chinese",
            "keep@label": chinese.keeping_ratio(crawl_zh, "label"),
            "keep@pareto": float("nan"),
        },
    ]


def test_table4_keeping_ratio(benchmark):
    rows = run_once(benchmark, reproduce_table4)
    print_table("Table 4: CommonCrawl keeping ratios", rows)
    english, chinese = rows
    # keeping ratios are small: the crawl is mostly filtered away
    assert english["keep@label"] < 0.35
    assert chinese["keep@label"] < 0.35
    # the label rule keeps at least as much as the stricter Pareto rule (EN row)
    assert english["keep@label"] >= english["keep@pareto"]
    # the Chinese classifier's keeping ratio is comparable to the English one
    assert abs(english["keep@label"] - chinese["keep@label"]) < 0.3
