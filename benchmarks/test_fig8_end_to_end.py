"""Figure 8 — end-to-end processing time and memory vs the RedPajama / Dolma baselines.

Paper result: across the Books, arXiv and C4 workloads and several process
counts, Data-Juicer needs on average ~50% less time and ~55% less memory than
the baseline pipelines (both baselines load the whole dataset and keep full
per-stage copies).  Here the three workloads are the synthetic books-like,
arXiv-like and C4-like corpora and the "process count" dimension is replaced
by the corpus scale (the single-process substrate).
"""

from conftest import print_table, run_once

from repro.baselines import DolmaLikePipeline, RedPajamaLikePipeline
from repro.core.executor import Executor
from repro.core.monitor import ResourceMonitor
from repro.recipes import get_recipe
from repro.synth import arxiv_like, books_like, c4_like

WORKLOADS = {
    "Books": (books_like, {"num_samples": 60, "seed": 1}, "pretrain-books-refine-en"),
    "arXiv": (arxiv_like, {"num_samples": 150, "seed": 2}, "pretrain-arxiv-refine-en"),
    "C4": (c4_like, {"num_samples": 250, "seed": 3}, "pretrain-c4-refine-en"),
}


def _measure(run) -> dict:
    with ResourceMonitor(trace_memory=True) as monitor:
        run()
    return monitor.report.as_dict()


def reproduce_figure8() -> list[dict]:
    rows = []
    for workload, (builder, kwargs, recipe_name) in WORKLOADS.items():
        corpus = builder(**kwargs)
        process = get_recipe(recipe_name)["process"]

        # warm-up pass per system: one-time process costs (lazy imports,
        # codepoint class tables, token caches) are not per-run costs and
        # would otherwise be billed to whichever system runs first
        warmup = corpus.take(8)
        Executor({"process": process, "op_fusion": True}).run(warmup)
        RedPajamaLikePipeline(process).run(warmup)
        DolmaLikePipeline(process).run(warmup)

        juicer = _measure(lambda: Executor({"process": process, "op_fusion": True}).run(corpus))
        redpajama = _measure(lambda: RedPajamaLikePipeline(process).run(corpus))
        dolma = _measure(lambda: DolmaLikePipeline(process).run(corpus))

        for system, report in (("Data-Juicer", juicer), ("RedPajama", redpajama), ("Dolma", dolma)):
            rows.append(
                {
                    "workload": workload,
                    "system": system,
                    "time_s": report["wall_time_s"],
                    "peak_mem_mb": report["peak_python_mb"],
                }
            )
    return rows


def test_fig8_end_to_end(benchmark):
    rows = run_once(benchmark, reproduce_figure8)
    print_table("Figure 8: end-to-end time and memory vs baselines", rows)

    by_key = {(row["workload"], row["system"]): row for row in rows}
    time_savings = []
    for workload in WORKLOADS:
        juicer = by_key[(workload, "Data-Juicer")]
        for baseline in ("RedPajama", "Dolma"):
            other = by_key[(workload, baseline)]
            # Data-Juicer is never slower than either baseline on any workload
            assert juicer["time_s"] <= other["time_s"], (workload, baseline)
            time_savings.append(1.0 - juicer["time_s"] / other["time_s"])
            # and does not need more Python heap than the copy-heavy baselines
            assert juicer["peak_mem_mb"] <= other["peak_mem_mb"] * 1.2, (workload, baseline)
    # the average time saving is clearly positive (paper: ~50.6% on average on
    # its much larger workloads; the pure-Python scaled-down substrate keeps
    # the direction and a smaller but consistent margin)
    assert sum(time_savings) / len(time_savings) > 0.1
