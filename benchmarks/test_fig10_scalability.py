"""Figure 10 — distributed processing time with a varying number of nodes.

Paper result: on the StackExchange and arXiv workloads, Data-Juicer on Ray
scales almost linearly with the number of nodes (up to ~87% time reduction at
16 nodes), while the Beam adaptation stays nearly flat because its data-loading
stage is the bottleneck.  The reproduction sweeps the simulated cluster over
1/2/4 worker nodes for both back-ends.
"""

from conftest import print_table, run_once

from repro.distributed import ScalabilitySweep
from repro.synth import arxiv_like, stackexchange_like

NODE_COUNTS = [1, 2, 4]

# corpora are sized so that per-node operator work clearly dominates the
# multiprocessing overhead — the regime the paper's 65GB/140GB workloads are in
WORKLOADS = {
    "StackExchange": (stackexchange_like, {"num_samples": 1500, "seed": 31}),
    "arXiv": (arxiv_like, {"num_samples": 900, "seed": 32}),
}

# a tokenization-heavy recipe (the kind the paper distributes across nodes)
SCALABILITY_PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"clean_links_mapper": {}},
    {"alphanumeric_filter": {"tokenization": True, "min_ratio": 0.1}},
    {"words_num_filter": {"min_num": 5}},
    {"word_repetition_filter": {"rep_len": 5, "max_ratio": 0.9}},
    {"stopwords_filter": {"min_ratio": 0.0}},
    {"flagged_words_filter": {"max_ratio": 0.5}},
    {"perplexity_filter": {"max_ppl": 1e9}},
    {"document_deduplicator": {}},
]


def reproduce_figure10() -> list[dict]:
    rows = []
    for workload, (builder, kwargs) in WORKLOADS.items():
        corpus = builder(**kwargs)
        process = SCALABILITY_PROCESS
        sweep = ScalabilitySweep(process_list=process, node_counts=NODE_COUNTS)
        for point in sweep.run(corpus, backends=("ray", "beam")):
            rows.append(
                {
                    "workload": workload,
                    "backend": point.backend,
                    "nodes": point.num_nodes,
                    "time_s": point.wall_time_s,
                    "load_s": point.load_time_s,
                }
            )
    return rows


def test_fig10_scalability(benchmark):
    rows = run_once(benchmark, reproduce_figure10)
    print_table("Figure 10: processing time vs number of nodes", rows)

    by_key = {(row["workload"], row["backend"], row["nodes"]): row for row in rows}
    for workload in WORKLOADS:
        ray_single = by_key[(workload, "ray", 1)]["time_s"]
        ray_max = by_key[(workload, "ray", NODE_COUNTS[-1])]["time_s"]
        # the Ray-like backend gets meaningfully faster with more nodes
        assert ray_max < ray_single, workload
        ray_reduction = 1.0 - ray_max / ray_single

        beam_single = by_key[(workload, "beam", 1)]["time_s"]
        beam_max = by_key[(workload, "beam", NODE_COUNTS[-1])]["time_s"]
        beam_reduction = 1.0 - beam_max / beam_single
        # the Beam-like backend scales clearly worse (its loading stage is serial)
        assert ray_reduction > beam_reduction, workload
        # and its single-node loading time is a visible fraction of its runtime
        assert by_key[(workload, "beam", NODE_COUNTS[-1])]["load_s"] > 0.0
