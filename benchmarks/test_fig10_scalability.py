"""Figure 10 — distributed processing time with a varying number of nodes.

Paper result: on the StackExchange and arXiv workloads, Data-Juicer on Ray
scales almost linearly with the number of nodes (up to ~87% time reduction at
16 nodes), while the Beam adaptation stays nearly flat because its data-loading
stage is the bottleneck.  The reproduction sweeps the simulated cluster over
1/2/4 worker nodes for both back-ends.

What is asserted
----------------
``wall_time_s`` is the measured host wall-clock; ``simulated_time_s`` is the
cluster projection (serial segments + slowest node's worker-measured CPU).
The projection shrinks with the node count *by construction*, so it is never
trusted on its own: the test always verifies — via the worker PIDs each sweep
point reports — that the partition-parallel stage genuinely ran on pool
workers and that **one persistent pool served every point** at a given node
count (across both back-ends and both workloads).  When the host has at least
as many CPU cores as the largest node count, the Figure-10 speedup is
additionally asserted on the measured wall-clock.
"""

import os

from conftest import print_table, run_once

from repro.distributed import ScalabilitySweep
from repro.synth import arxiv_like, stackexchange_like

NODE_COUNTS = [1, 2, 4]

# corpora are sized so that per-node operator work clearly dominates the
# multiprocessing overhead — the regime the paper's 65GB/140GB workloads are in
WORKLOADS = {
    "StackExchange": (stackexchange_like, {"num_samples": 1500, "seed": 31}),
    "arXiv": (arxiv_like, {"num_samples": 900, "seed": 32}),
}

# a tokenization-heavy recipe (the kind the paper distributes across nodes)
SCALABILITY_PROCESS = [
    {"whitespace_normalization_mapper": {}},
    {"clean_links_mapper": {}},
    {"alphanumeric_filter": {"tokenization": True, "min_ratio": 0.1}},
    {"words_num_filter": {"min_num": 5}},
    {"word_repetition_filter": {"rep_len": 5, "max_ratio": 0.9}},
    {"stopwords_filter": {"min_ratio": 0.0}},
    {"flagged_words_filter": {"max_ratio": 0.5}},
    {"perplexity_filter": {"max_ppl": 1e9}},
    {"document_deduplicator": {}},
]


def usable_cores() -> int:
    """CPU cores this process can really use: affinity, capped by cgroup quota.

    ``os.cpu_count()`` reports the host's logical cores, which overstates the
    truth inside containers (a Kubernetes pod with a 1-CPU quota on a 64-core
    node still sees 64), so the measured-speedup gate would open on hosts
    that physically cannot run workers in parallel.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        cores = os.cpu_count() or 1
    try:  # cgroup v2 CPU quota, e.g. "200000 100000" = 2 CPUs, or "max"
        with open("/sys/fs/cgroup/cpu.max") as handle:
            quota, period = handle.read().split()
        if quota != "max":
            cores = min(cores, max(1, int(quota) // int(period)))
    except (OSError, ValueError):
        pass
    return cores


def reproduce_figure10() -> list[dict]:
    rows = []
    for workload, (builder, kwargs) in WORKLOADS.items():
        corpus = builder(**kwargs)
        process = SCALABILITY_PROCESS
        sweep = ScalabilitySweep(process_list=process, node_counts=NODE_COUNTS)
        for point in sweep.run(corpus, backends=("ray", "beam")):
            rows.append(
                {
                    "workload": workload,
                    "backend": point.backend,
                    "nodes": point.num_nodes,
                    "time_s": point.wall_time_s,
                    "sim_s": point.simulated_time_s,
                    "load_s": point.load_time_s,
                    "worker_pids": point.worker_pids,
                }
            )
    return rows


def test_fig10_scalability(benchmark):
    rows = run_once(benchmark, reproduce_figure10)
    print_table(
        "Figure 10: processing time vs number of nodes",
        [{k: v for k, v in row.items() if k != "worker_pids"} for row in rows],
    )

    # --- genuine parallel execution: worker_pids holds the pids that really
    # executed dispatched tasks (reported from inside the workers), so every
    # multi-node point must show out-of-process execution ------------------
    coordinator_pid = os.getpid()
    for row in rows:
        if row["nodes"] > 1:
            pids = row["worker_pids"]
            assert pids, row
            assert coordinator_pid not in pids, row
            assert len(set(pids)) <= row["nodes"], row

    # --- genuine pool reuse: at each node count, ONE persistent pool served
    # every sweep point (both back-ends, both workloads), so the union of
    # serving pids can hold at most `nodes` distinct processes.  A
    # fork-per-run regression spawns fresh workers per point and blows
    # through that bound. --------------------------------------------------
    for nodes in NODE_COUNTS:
        if nodes == 1:
            continue
        served = set()
        for row in rows:
            if row["nodes"] == nodes:
                served.update(row["worker_pids"])
        assert 1 <= len(served) <= nodes, (
            f"expected one persistent pool (<= {nodes} workers) across all "
            f"runs at {nodes} nodes, saw {len(served)} distinct serving pids"
        )

    by_key = {(row["workload"], row["backend"], row["nodes"]): row for row in rows}
    host_cores = usable_cores()
    for workload in WORKLOADS:
        # the Ray-like backend gets meaningfully faster with more nodes; the
        # projection models one core per node (the paper's platform), and is
        # trustworthy here because the pool-reuse checks above passed
        ray_single = by_key[(workload, "ray", 1)]["sim_s"]
        ray_max = by_key[(workload, "ray", NODE_COUNTS[-1])]["sim_s"]
        assert ray_max < ray_single, workload
        ray_reduction = 1.0 - ray_max / ray_single

        if host_cores >= NODE_COUNTS[-1]:
            # with enough physical cores the speedup must also be *measured*
            measured_single = by_key[(workload, "ray", 1)]["time_s"]
            measured_max = by_key[(workload, "ray", NODE_COUNTS[-1])]["time_s"]
            assert measured_max < measured_single, workload

        beam_single = by_key[(workload, "beam", 1)]["sim_s"]
        beam_max = by_key[(workload, "beam", NODE_COUNTS[-1])]["sim_s"]
        beam_reduction = 1.0 - beam_max / beam_single
        # the Beam-like backend scales clearly worse (its loading stage is serial)
        assert ray_reduction > beam_reduction, workload
        # and its single-node loading time is a visible fraction of its runtime
        assert by_key[(workload, "beam", NODE_COUNTS[-1])]["load_s"] > 0.0
