"""Table 9 — per-task scores on the 16 HELM core tasks for the compared models.

Paper result: the per-task breakdown behind Table 2; the Data-Juicer model
wins or ties the raw-data baselines on most of the 16 tasks, and the IFT
continuation improves several knowledge/QA tasks further.
"""

from conftest import print_table, run_once

from repro.core.dataset import concatenate_datasets
from repro.recipes import build_finetune_pool, build_pretrain_mixture, data_juicer_finetune_dataset
from repro.tools.evaluator import Evaluator, ProxyTrainer, task_names


def reproduce_table9() -> list[dict]:
    trainer = ProxyTrainer()
    evaluator = Evaluator()

    raw = build_pretrain_mixture(samples_per_component=30, include_pile_like=True)
    refined = build_pretrain_mixture(samples_per_component=30, include_pile_like=True, refined=True)
    pool = build_finetune_pool(num_datasets=6, samples_per_dataset=50, seed=3)
    ift = data_juicer_finetune_dataset(pool, num_samples=120, language="EN", usage="IFT", seed=3)

    models = {
        "Falcon-like (raw)": trainer.train(raw, name="Falcon-like (raw)", num_tokens=24_000),
        "Pythia-like (raw)": trainer.train(raw.shuffle(seed=2), name="Pythia-like (raw)", num_tokens=24_000),
        "Data-Juicer": trainer.train(refined, name="Data-Juicer", num_tokens=12_000),
        "Data-Juicer IFT": trainer.train(
            concatenate_datasets([refined, ift]), name="Data-Juicer IFT", num_tokens=14_000
        ),
    }
    reports = {name: evaluator.evaluate(model) for name, model in models.items()}

    rows = []
    for task in task_names():
        rows.append({"task": task, **{name: reports[name].task_scores[task] for name in models}})
    rows.append({"task": "AVERAGE", **{name: reports[name].average_score for name in models}})
    return rows


def test_table9_per_task(benchmark):
    rows = run_once(benchmark, reproduce_table9)
    print_table("Table 9: per-task scores on the 16 HELM core tasks", rows)

    assert len(rows) == 17  # 16 tasks + average row
    average = rows[-1]
    # the refined model beats both raw baselines on the average row
    assert average["Data-Juicer"] > average["Falcon-like (raw)"]
    assert average["Data-Juicer"] > average["Pythia-like (raw)"]
    # and wins (or ties) both raw baselines on a substantial share of the
    # individual tasks despite training on half the tokens (the paper's
    # Table 9 shows the same mixed-but-favourable per-task picture)
    wins = sum(
        1 for row in rows[:-1] if row["Data-Juicer"] >= max(row["Falcon-like (raw)"], row["Pythia-like (raw)"])
    )
    assert wins >= 6
    # the IFT continuation does not hurt the overall average
    assert average["Data-Juicer IFT"] >= average["Data-Juicer"] - 1.0
