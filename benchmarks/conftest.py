"""Shared helpers for the benchmark harness.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (Sec. 7 / appendix).  Each benchmark uses the
``pytest-benchmark`` fixture with a single round — the point is to reproduce
the *rows/series* the paper reports (and assert their qualitative shape), not
to micro-benchmark the code.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def pytest_collection_modifyitems(items):
    """Mark every test in this directory so the suites can run separately.

    ``pytest -m "not benchmark_suite"`` runs only the unit tests under
    ``tests/``; ``pytest -m benchmark_suite`` (or ``pytest benchmarks``) runs
    only the paper reproductions (see the Makefile targets).  The hook
    receives the whole session's items, so mark only the ones under this
    directory.
    """
    here = Path(__file__).parent
    for item in items:
        if here in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmark_suite)


def print_table(title: str, rows: list[dict]) -> None:
    """Print a list of row dicts as an aligned text table under a title."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under the pytest-benchmark fixture."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
